"""Deprecated whole-trace repeated measurement (pre-windowed-sampling).

.. deprecated::
    :class:`SamplingRunner` predates the checkpointed windowed-sampling
    subsystem and does **not** implement the SimFlex methodology its name
    suggested: it reruns *whole* independently-seeded traces, so every
    "sample" pays full-trace cost and the samples measure seed-to-seed
    generator variation rather than within-trace sampling error.  The real
    windowed sampler -- many short measurement windows, warm checkpoints,
    matched-pair aggregation, adaptive termination -- lives in
    :mod:`repro.sampling` (:class:`repro.sampling.WindowedSampler`), and
    sweeps opt in declaratively via ``SweepSpec(sampling=SamplingConfig())``.

This module remains as a thin compatibility shim; constructing a
:class:`SamplingRunner` emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.sim.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval
from repro.utils.units import SizeLike
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class SampledMeasurement:
    """Aggregate of one metric across sample runs."""

    metric: str
    samples: "tuple[float, ...]"
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        """Mean of the samples."""
        return self.interval.mean

    @property
    def relative_error(self) -> float:
        """Half-width relative to the mean (the paper targets < 2%)."""
        return self.interval.relative_error


class SamplingRunner:
    """Runs repeated, independently-seeded measurements of one experiment.

    .. deprecated:: use :class:`repro.sampling.WindowedSampler`, which
        measures short windows of *one* trace instead of rerunning whole
        traces (orders of magnitude cheaper at equal confidence).
    """

    def __init__(self, base_config: Optional[ExperimentConfig] = None,
                 num_samples: int = 5) -> None:
        warnings.warn(
            "SamplingRunner reruns whole independently-seeded traces and is "
            "deprecated; use repro.sampling.WindowedSampler (checkpointed "
            "measurement windows) or SweepSpec(sampling=SamplingConfig())",
            DeprecationWarning, stacklevel=2,
        )
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        self.base_config = base_config or ExperimentConfig()
        self.num_samples = num_samples

    # ------------------------------------------------------------------ #
    def run_samples(self, design_name: str, profile: WorkloadProfile,
                    capacity: SizeLike) -> List[ExperimentResult]:
        """One :class:`ExperimentResult` per independently-seeded sample."""
        results = []
        for sample in range(self.num_samples):
            config = replace(self.base_config, seed=self.base_config.seed + sample)
            runner = ExperimentRunner(config)
            results.append(runner.run_design(design_name, profile, capacity))
        return results

    def measure(self, design_name: str, profile: WorkloadProfile,
                capacity: SizeLike,
                metric: Callable[[ExperimentResult], float],
                metric_name: str = "metric") -> SampledMeasurement:
        """Aggregate one metric across samples with a 95% confidence interval."""
        results = self.run_samples(design_name, profile, capacity)
        samples = tuple(metric(result) for result in results)
        return SampledMeasurement(
            metric=metric_name,
            samples=samples,
            interval=mean_confidence_interval(samples),
        )

    def measure_miss_ratio(self, design_name: str, profile: WorkloadProfile,
                           capacity: SizeLike) -> SampledMeasurement:
        """Convenience wrapper for the most common sampled metric."""
        return self.measure(
            design_name, profile, capacity,
            metric=lambda result: result.miss_ratio,
            metric_name="miss_ratio",
        )

    @staticmethod
    def aggregate(samples: Sequence[float], metric_name: str = "metric") -> SampledMeasurement:
        """Build a :class:`SampledMeasurement` from externally-collected samples."""
        return SampledMeasurement(
            metric=metric_name,
            samples=tuple(samples),
            interval=mean_confidence_interval(list(samples)),
        )
