"""Simulation and experiment layer.

* :mod:`repro.sim.performance` -- the analytic performance model that converts
  measured DRAM-cache behaviour into the user-IPC / speedup numbers of
  Figures 7 and 8.
* :mod:`repro.sim.factory` -- construction of every evaluated design at any
  (possibly scaled-down) capacity.
* :mod:`repro.sim.experiment` -- the experiment runner used by the examples
  and by every benchmark: warm-up, measurement, and a uniform result record.
* :mod:`repro.sim.sampling` -- SimFlex-style repeated measurement windows with
  confidence intervals.
"""

from repro.sim.performance import PerformanceModel
from repro.sim.factory import DESIGN_NAMES, make_design
from repro.sim.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.sim.sampling import SampledMeasurement, SamplingRunner

__all__ = [
    "PerformanceModel",
    "DESIGN_NAMES",
    "make_design",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "SampledMeasurement",
    "SamplingRunner",
]
