"""Simulation and experiment layer.

* :mod:`repro.sim.registry` -- the design registry: every design family
  registers a builder via :func:`repro.sim.registry.register_design`.
* :mod:`repro.sim.factory` -- ``make_design``, now a thin registry lookup
  kept for backwards compatibility, and the registry-derived
  :data:`~repro.sim.factory.DESIGN_NAMES`.
* :mod:`repro.sim.spec` -- declarative experiment descriptions:
  :class:`~repro.sim.spec.ExperimentSpec` (one trial) and
  :class:`~repro.sim.spec.SweepSpec` (designs x workloads x capacities x
  overrides), validated at construction time.
* :mod:`repro.sim.executor` -- serial and process-parallel sweep execution
  with a shared trace/baseline cache.
* :mod:`repro.sim.resultset` -- :class:`~repro.sim.resultset.ResultSet`:
  filtering, grouping, tabulation, and lossless JSON/CSV round-trips.
* :mod:`repro.sim.performance` -- the analytic performance model that converts
  measured DRAM-cache behaviour into the user-IPC / speedup numbers of
  Figures 7 and 8.
* :mod:`repro.sim.experiment` -- the single-trial experiment runner: warm-up,
  measurement, and a uniform result record.
* :mod:`repro.sim.sampling` -- deprecated whole-trace repeated measurement;
  the real SimFlex-style windowed sampler lives in :mod:`repro.sampling`
  and plugs into sweeps via ``SweepSpec(sampling=SamplingConfig())``.

Only the registry is imported eagerly; everything else loads on first
attribute access (PEP 562).  This keeps :mod:`repro.sim.registry` importable
from the design modules themselves -- each registers its builder at import
time -- without creating an import cycle through this package.
"""

from importlib import import_module

from repro.sim.registry import (  # noqa: F401  (re-exported)
    DESIGNS,
    DesignBuildContext,
    DesignEntry,
    DesignRegistry,
    register_design,
)

#: Attribute name -> defining module, resolved lazily on first access.
_LAZY_EXPORTS = {
    "PerformanceModel": "repro.sim.performance",
    "DESIGN_NAMES": "repro.sim.factory",
    "design_names": "repro.sim.factory",
    "make_design": "repro.sim.factory",
    "unison_design_for_ways": "repro.sim.factory",
    "ExperimentConfig": "repro.sim.experiment",
    "ExperimentResult": "repro.sim.experiment",
    "ExperimentRunner": "repro.sim.experiment",
    "ExperimentSpec": "repro.sim.spec",
    "SweepSpec": "repro.sim.spec",
    "ResultSet": "repro.sim.resultset",
    "SweepExecutor": "repro.sim.executor",
    "run_sweep": "repro.sim.executor",
    "run_trial": "repro.sim.executor",
    "SampledMeasurement": "repro.sim.sampling",
    "SamplingRunner": "repro.sim.sampling",
}

__all__ = [
    "DESIGNS",
    "DesignBuildContext",
    "DesignEntry",
    "DesignRegistry",
    "register_design",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
