"""Design factory.

One place to construct every evaluated DRAM cache design with consistent
parameters, including the scaled-down-capacity mode the experiment harness
uses (see :mod:`repro.sim.experiment`): structural parameters (page size,
associativity, row organization) always match the paper; only the number of
sets shrinks with the scale factor, while latency parameters that depend on
the *paper* capacity (Footprint Cache's SRAM tag latency, Unison Cache's way
predictor sizing) are derived from the unscaled capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.alloy import AlloyCache
from repro.baselines.footprint import FootprintCache
from repro.baselines.ideal import IdealCache
from repro.baselines.loh_hill import LohHillCache
from repro.baselines.no_cache import NoDramCache
from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
)
from repro.core.unison import UnisonCache
from repro.dramcache.base import DramCacheModel
from repro.utils.units import parse_size, SizeLike

#: Names accepted by :func:`make_design`.
DESIGN_NAMES = (
    "unison",          # 960B pages, 4-way, way prediction (the main design point)
    "unison-1984",     # 1984B pages, 4-way
    "unison-dm",       # 960B pages, direct-mapped
    "unison-32way",    # 960B pages, 32-way (Figure 5's associativity sweep)
    "alloy",
    "footprint",
    "loh_hill",        # extension: Loh & Hill MICRO'11 tags-in-DRAM design
    "ideal",
    "no_cache",
)

#: Row-buffer size shared by every design (Table III).
_ROW_BYTES = 8 * 1024


def _scaled_capacity(paper_capacity: SizeLike, scale: int) -> int:
    capacity = parse_size(paper_capacity)
    if scale <= 0:
        raise ValueError("scale must be positive")
    scaled = capacity // scale
    # Keep a whole number of rows and never collapse below a handful of rows.
    scaled = max(_ROW_BYTES * 4, (scaled // _ROW_BYTES) * _ROW_BYTES)
    return scaled


def make_design(name: str, capacity: SizeLike, scale: int = 1,
                num_cores: int = 16,
                associativity: Optional[int] = None) -> DramCacheModel:
    """Construct a DRAM cache design.

    Parameters
    ----------
    name:
        One of :data:`DESIGN_NAMES`.
    capacity:
        The *paper* capacity (e.g. ``"1GB"``).  Latency parameters that grow
        with capacity are derived from this value.
    scale:
        Capacity scale-down factor for tractable trace-driven runs; the
        simulated structure holds ``capacity / scale`` bytes.
    num_cores:
        Core count (sizes the Alloy miss predictor).
    associativity:
        Optional associativity override for the Unison variants.
    """
    paper_capacity = parse_size(capacity)
    scaled = _scaled_capacity(paper_capacity, scale)
    key = name.lower()

    if key in ("unison", "unison-dm", "unison-32way", "unison-1984"):
        blocks_per_page = 31 if key == "unison-1984" else 15
        if associativity is None:
            if key == "unison-dm":
                associativity = 1
            elif key == "unison-32way":
                associativity = 32
            else:
                associativity = 4
        config = UnisonCacheConfig(
            capacity=scaled,
            blocks_per_page=blocks_per_page,
            associativity=associativity,
            use_way_prediction=associativity > 1,
            way_predictor_index_bits=16 if paper_capacity > 4 * 1024 ** 3 else 12,
        )
        return UnisonCache(config)

    if key == "alloy":
        return AlloyCache(AlloyCacheConfig(capacity=scaled), num_cores=num_cores)

    if key == "footprint":
        tag_latency = footprint_tag_array_for_capacity(paper_capacity).lookup_latency_cycles
        config = FootprintCacheConfig(capacity=scaled)
        return FootprintCache(config, tag_latency_cycles=tag_latency)

    if key == "loh_hill":
        return LohHillCache(capacity=scaled)

    if key == "ideal":
        return IdealCache(capacity=scaled)

    if key == "no_cache":
        return NoDramCache()

    raise ValueError(f"unknown design {name!r}; options: {DESIGN_NAMES}")
