"""Design factory: thin, backwards-compatible front end to the registry.

Construction logic lives in the design catalog: every shipped design is a
declarative :class:`repro.dramcache.spec.DesignSpec` registered in
:data:`repro.sim.registry.DESIGNS` by :mod:`repro.dramcache.designs` (new
designs register there, or at runtime via ``DESIGNS.register_spec`` /
``@register_design``).  :func:`make_design` resolves a name in that registry
and :data:`DESIGN_NAMES` is derived from it, so this module contains no
design-specific branches.

Capacity semantics (shared by every design, see
:func:`repro.config.cache_configs.scaled_capacity`): structural parameters
(page size, associativity, row organization) always match the paper; only the
number of sets shrinks with the scale factor, while latency parameters that
depend on the *paper* capacity (Footprint Cache's SRAM tag latency, Unison
Cache's way predictor sizing) are derived from the unscaled capacity.
"""

from __future__ import annotations

from typing import Optional

# Importing the design catalog is what populates the registry: every shipped
# design -- the canonical six families and the component-composed hybrids --
# registers there as a declarative DesignSpec.
import repro.dramcache.designs  # noqa: F401
from repro.dramcache.base import DramCacheModel
from repro.sim.registry import DESIGNS
from repro.utils.units import SizeLike

#: Presentation order for the names the seed shipped with; freshly registered
#: designs append after these in registration order.
_LEGACY_ORDER = (
    "unison",
    "unison-1984",
    "unison-dm",
    "unison-32way",
    "alloy",
    "footprint",
    "loh_hill",
    "ideal",
    "no_cache",
)


def design_names() -> "tuple[str, ...]":
    """All currently-registered design names (live view of the registry)."""
    registered = DESIGNS.names()
    legacy = [name for name in _LEGACY_ORDER if name in registered]
    extra = [name for name in registered if name not in _LEGACY_ORDER]
    return tuple(legacy + extra)


#: Names accepted by :func:`make_design` -- a snapshot of
#: :func:`design_names` taken at import time, kept for backwards
#: compatibility.  Designs registered after import are still buildable by
#: name; call :func:`design_names` for an up-to-date listing.
DESIGN_NAMES = design_names()

#: Canonical Unison variant name per associativity (Figure 5's sweep points).
_UNISON_WAYS_NAMES = {1: "unison-dm", 4: "unison", 32: "unison-32way"}


def unison_design_for_ways(ways: int) -> "tuple[str, str]":
    """(constructible design name, reporting label) for a ways count.

    The three associativities evaluated in Figure 5 map to their canonical
    registered variants; any other value is built from the base ``unison``
    entry with an associativity override and labelled ``unison-<N>way`` so
    results never masquerade as the 4-way design point.
    """
    if ways <= 0:
        raise ValueError("ways must be positive")
    name = _UNISON_WAYS_NAMES.get(ways)
    if name is not None:
        return name, name
    return "unison", f"unison-{ways}way"


def make_design(name: str, capacity: SizeLike, scale: int = 1,
                num_cores: int = 16,
                associativity: Optional[int] = None) -> DramCacheModel:
    """Construct a DRAM cache design by registered name.

    Parameters
    ----------
    name:
        One of :data:`DESIGN_NAMES` (or any later-registered design).
    capacity:
        The *paper* capacity (e.g. ``"1GB"``).  Latency parameters that grow
        with capacity are derived from this value.
    scale:
        Capacity scale-down factor for tractable trace-driven runs; the
        simulated structure holds ``capacity / scale`` bytes.
    num_cores:
        Core count (sizes the Alloy miss predictor).
    associativity:
        Optional associativity override.  Only designs registered with
        ``supports_associativity=True`` (the Unison variants) accept one;
        passing it for any other design raises ``ValueError``.
    """
    return DESIGNS.build(name, capacity, scale=scale, num_cores=num_cores,
                         associativity=associativity)
