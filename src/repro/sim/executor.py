"""Sweep execution: serial or process-parallel, with shared caches.

The executor turns a :class:`repro.sim.spec.SweepSpec` into a
:class:`repro.sim.resultset.ResultSet`.  Two properties make large grids
tractable:

* **Trace/baseline reuse.**  Synthetic traces are deterministic functions of
  ``(profile, scale, num_cores, seed, num_accesses)`` and the no-DRAM-cache
  baseline replay depends only on the trace and the warm-up split, so both
  are cached process-wide under those keys.  An N-cell grid that shares
  workloads and configurations pays for each distinct trace and baseline
  once, not N times -- and because every design in a cell group replays the
  *same* cached trace, comparisons stay fair automatically.  Behind the
  in-memory layer sits the persistent on-disk
  :class:`repro.trace.store.TraceStore`: a generated trace is streamed into
  the store as it is produced and replayed from there by every later
  process, sweep, and benchmark run with the same key, so each distinct
  trace is generated once *ever* (disable or relocate via the
  ``REPRO_TRACE_STORE`` environment variable).

* **Deterministic parallelism.**  ``workers > 1`` fans trials out to a
  ``ProcessPoolExecutor``.  Each trial is self-contained (its spec carries
  the full configuration, and per-trial seeding is derived from the spec,
  never from process state), so the parallel path produces *bit-identical*
  results to the serial path, in the same deterministic trial order.
  Before forking, the parent pre-builds every distinct trace and baseline
  the grid needs, so workers inherit populated caches and spend their time
  simulating designs, not regenerating traces.  Trials are scheduled in
  *trace-affine batches* (:func:`group_trials_by_trace`): every batch
  replays a single trace, so on spawn-based platforms -- where nothing is
  inherited -- each worker loads from the trace store only the traces its
  own batches need.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dramcache.stats import DramCacheStats
from repro.obs.core import current as obs_current, start_run
from repro.sim.experiment import ExperimentResult, ExperimentRunner, Workload
from repro.sim.resultset import ResultSet
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.trace.record import MemoryAccess
from repro.trace.store import TraceStore, configured_root
from repro.workloads.profile import WorkloadProfile

#: Cache key of a materialized trace (see module docstring).
TraceKey = Tuple[Workload, int, int, int, int]

# Process-wide caches.  Worker processes get their own copies (pre-seeded by
# fork with the parent's contents); entries are deterministic in the key, so
# sharing across sweeps and processes never changes results.
_TRACE_CACHE: Dict[TraceKey, List[MemoryAccess]] = {}
_BASELINE_CACHE: Dict[Tuple[TraceKey, float], DramCacheStats] = {}

# The process-wide on-disk trace store (see repro.trace.store).  Rebuilt
# lazily whenever REPRO_TRACE_STORE changes, so tests and callers can point
# the executor at a different directory -- or disable it -- at any time.
_TRACE_STORE: Optional[TraceStore] = None
_TRACE_STORE_ROOT: Optional[Path] = None


def get_trace_store() -> Optional[TraceStore]:
    """The on-disk store shared by all sweeps; ``None`` when disabled."""
    global _TRACE_STORE, _TRACE_STORE_ROOT
    root = configured_root()
    if root is None:
        _TRACE_STORE = None
        _TRACE_STORE_ROOT = None
    elif _TRACE_STORE is None or root != _TRACE_STORE_ROOT:
        _TRACE_STORE = TraceStore(root=root)
        _TRACE_STORE_ROOT = root
    return _TRACE_STORE


def trace_key(profile: Workload,
              config) -> TraceKey:
    """The identity of a materialized trace."""
    return (profile, config.scale, config.num_cores, config.seed,
            config.num_accesses)


def clear_caches() -> None:
    """Drop the in-memory trace/baseline caches (mainly for tests).

    The on-disk :class:`TraceStore` is persistent by design and is *not*
    touched; use ``get_trace_store().clear()`` for that.
    """
    _TRACE_CACHE.clear()
    _BASELINE_CACHE.clear()


def cached_trace(runner: ExperimentRunner,
                 profile: Workload) -> List[MemoryAccess]:
    """The trace for (profile, runner.config), built once per process.

    Lookup order: the in-memory cache, then the on-disk trace store
    (shared across processes and runs), then generation -- which streams
    chunk-by-chunk into the store while materializing, so a synthetic trace
    is generated once *ever* per distinct key rather than once per process.
    Trace-file workloads are simply loaded (they are already on disk).
    """
    key = trace_key(profile, runner.config)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace

    store = get_trace_store() if isinstance(profile, WorkloadProfile) else None
    if store is not None:
        config = runner.config
        store_key = store.key(profile, config.scale, config.num_cores,
                              config.seed, config.num_accesses)
        try:
            trace = store.load(store_key)
            if trace is None:
                trace = store.put_chunks(
                    store_key, runner.iter_trace_chunks(profile),
                    num_cores=config.num_cores, collect=True,
                )
        except OSError:
            # Unreadable/unwritable store directory must never break a
            # sweep; fall back to plain in-memory generation.
            trace = None

    if trace is None:
        trace = runner.build_trace(profile)
    _TRACE_CACHE[key] = trace
    return trace


def cached_baseline(runner: ExperimentRunner, profile: Workload,
                    trace: Sequence[MemoryAccess]) -> DramCacheStats:
    """The no-cache baseline for (profile, runner.config), replayed once."""
    key = (trace_key(profile, runner.config), runner.config.warmup_fraction)
    baseline = _BASELINE_CACHE.get(key)
    if baseline is None:
        _, measure = runner.split_trace(trace)
        baseline = runner.no_cache_baseline(measure)
        _BASELINE_CACHE[key] = baseline
    return baseline


def _warm_caches(trials: Sequence[ExperimentSpec]) -> None:
    """Build every distinct trace and baseline the trials need, in-process.

    Called before forking a worker pool so the workers inherit fully
    populated caches and never duplicate trace generation (the dominant
    per-trial cost).
    """
    from repro.trace.binfmt import is_binary_trace
    from repro.workloads.tracefile import TraceFileWorkload

    seen = set()
    for trial in trials:
        key = (trace_key(trial.workload, trial.config),
               trial.config.warmup_fraction, trial.sampling is None)
        if key in seen:
            continue
        seen.add(key)
        runner = ExperimentRunner(trial.config, system=trial.system)
        if trial.sampling is not None:
            # Sampled trials replay their own per-window baselines; binary
            # trace files are windowed from disk, so neither needs warming.
            if not (isinstance(trial.workload, TraceFileWorkload)
                    and is_binary_trace(trial.workload.path)):
                cached_trace(runner, trial.workload)
            continue
        cached_baseline(runner, trial.workload,
                        cached_trace(runner, trial.workload))


def group_trials_by_trace(trials: Sequence[ExperimentSpec],
                          ) -> List[List[int]]:
    """Partition trial indices into groups sharing one materialized trace.

    Spawn-based platforms (Windows, macOS) cannot inherit the parent's
    pre-warmed caches by fork, so every worker pays for each trace it
    touches.  Scheduling whole trace-groups onto one worker means a worker
    loads only the traces its own trials replay -- once each -- instead of
    every trace the grid mentions.  Groups keep first-appearance order and
    preserve the in-group trial order, so reassembling group results by
    index reproduces the deterministic grid order exactly.
    """
    groups: Dict[TraceKey, List[int]] = {}
    for index, trial in enumerate(trials):
        key = trace_key(trial.workload, trial.config)
        groups.setdefault(key, []).append(index)
    return list(groups.values())


def _chunk_groups(groups: List[List[int]], total: int,
                  workers: int) -> List[List[int]]:
    """Split trace-groups into batches sized to keep ``workers`` busy.

    One batch per trace-group is ideal for locality but serializes a grid
    dominated by one workload; chunking each group to roughly a quarter of
    a fair per-worker share restores parallelism while every batch still
    touches a single trace.
    """
    chunk_size = max(1, -(-total // (workers * 4)))
    batches = []
    for group in groups:
        for start in range(0, len(group), chunk_size):
            batches.append(group[start:start + chunk_size])
    return batches


def _run_trial_batch(trials: Sequence[ExperimentSpec],
                     ) -> List[ExperimentResult]:
    """Worker entry point: run a batch of trials sharing one trace."""
    return [run_trial(trial) for trial in trials]


def run_trial(trial: ExperimentSpec) -> ExperimentResult:
    """Run one trial, reusing the process-wide trace/baseline caches.

    A trial carrying a ``sampling`` config runs through the checkpointed
    windowed sampler instead of a full replay; both paths share the cached
    trace, and a binary trace-file workload is windowed seekably (never
    fully materialized) on the sampled path.
    """
    with start_run("trial", design=trial.design, label=trial.result_label,
                   workload=trial.workload.name,
                   capacity=str(trial.capacity),
                   sampled=trial.sampling is not None) as obs_run:
        if trial.sampling is not None:
            return _run_sampled_trial(trial)
        runner = ExperimentRunner(trial.config, system=trial.system)
        with obs_run.span("trace_load"):
            trace = cached_trace(runner, trial.workload)
        with obs_run.span("baseline"):
            baseline = cached_baseline(runner, trial.workload, trace)
        return runner.run_design(
            trial.design, trial.workload, trial.capacity,
            trace=trace,
            associativity=trial.associativity,
            label=trial.label,
            baseline_stats=baseline,
        )


def _sampled_trial_inputs(trial: ExperimentSpec):
    """The (sampler, trace, trace_identity) triple of a sampled trial."""
    from repro.sampling.runner import WindowedSampler
    from repro.trace.binfmt import is_binary_trace
    from repro.workloads.tracefile import TraceFileWorkload

    sampler = WindowedSampler(trial.sampling, config=trial.config,
                              system=trial.system)
    trace = None
    trace_identity = None
    if not (isinstance(trial.workload, TraceFileWorkload)
            and is_binary_trace(trial.workload.path)):
        # Synthetic (and non-binary file) workloads replay the same cached
        # trace full runs use; binary files stay on disk and are windowed
        # through the mmap/chunk-index readers instead.
        from repro.sampling.checkpoints import trace_token

        runner = ExperimentRunner(trial.config, system=trial.system)
        with obs_current().span("trace_load"):
            trace = cached_trace(runner, trial.workload)
        # The cached trace is canonical for (workload, config) by
        # construction, so on-disk checkpoints key on the authoritative
        # generator-versioned identity rather than a content hash.
        trace_identity = trace_token(trial.workload, trial.config)
    return sampler, trace, trace_identity


def _run_sampled_trial(trial: ExperimentSpec) -> ExperimentResult:
    sampler, trace, trace_identity = _sampled_trial_inputs(trial)
    return sampler.run_design(
        trial.design, trial.workload, trial.capacity,
        trace=trace,
        associativity=trial.associativity,
        label=trial.label,
        trace_identity=trace_identity,
    )


def sampled_trial_total(trial: ExperimentSpec) -> Optional[int]:
    """The window provider's trace length, computed without opening it.

    ``None`` means the length cannot be known up front (a non-binary trace
    file, or a binary stream that was never finalized), in which case the
    work queue falls back to scheduling the whole trial as one job.
    """
    from repro.trace.binfmt import is_binary_trace, read_header
    from repro.trace.errors import TraceFormatError
    from repro.workloads.tracefile import TraceFileWorkload

    if isinstance(trial.workload, TraceFileWorkload):
        if not is_binary_trace(trial.workload.path):
            return None
        try:
            count = read_header(trial.workload.path).access_count
        except (TraceFormatError, OSError):
            return None
        if count is None:
            return None
        return min(count, trial.config.num_accesses)
    # Synthetic traces materialize exactly num_accesses records.
    return trial.config.num_accesses


def sampled_window_plan(trial: ExperimentSpec):
    """The trial's window plan, or ``None`` when it cannot be pre-planned.

    The plan is a pure function of (trace length, warm-up fraction,
    sampling config), so the queue planner, every window-batch worker, and
    the final assembly all derive the identical plan independently.
    """
    from repro.sampling.windows import plan_windows

    if trial.sampling is None:
        return None
    total = sampled_trial_total(trial)
    if total is None:
        return None
    return plan_windows(total, trial.config.warmup_fraction, trial.sampling)


def run_trial_windows(trial: ExperimentSpec,
                      window_indices: Sequence[int]) -> Dict[int, object]:
    """Measure a batch of a sampled trial's windows (a work-queue job).

    Returns ``{window_index: WindowMeasurement}``; the measurements are
    bit-identical to the ones the serial sampled path produces for the same
    windows, so batches measured by different workers reassemble exactly.
    """
    with start_run("windows", design=trial.design, label=trial.result_label,
                   workload=trial.workload.name,
                   capacity=str(trial.capacity),
                   windows=len(window_indices)):
        sampler, trace, trace_identity = _sampled_trial_inputs(trial)
        return sampler.measure_windows(
            trial.design, trial.workload, trial.capacity, window_indices,
            trace=trace,
            associativity=trial.associativity,
            label=trial.result_label,
            trace_identity=trace_identity,
        )


def assemble_sampled_trial(trial: ExperimentSpec,
                           measurements: Dict[int, object],
                           ) -> ExperimentResult:
    """Aggregate window-batch measurements into the trial's final result.

    Replays the adaptive stopper over the plan's measurement order, so the
    aggregation stops at exactly the window the serial run would have
    stopped at; measurements past that point (speculatively measured
    batches) are discarded.
    """
    from repro.sampling.runner import WindowedSampler

    plan = sampled_window_plan(trial)
    if plan is None:
        raise ValueError(
            f"trial {trial.describe()} cannot be window-planned up front"
        )
    sampler = WindowedSampler(trial.sampling, config=trial.config,
                              system=trial.system)
    with obs_current().span("assemble"):
        run = sampler.assemble_run(trial.result_label, measurements,
                                   workload_name=trial.workload.name,
                                   capacity=trial.capacity, plan=plan)
        return run.results()[0]


class SweepExecutor:
    """Runs every trial of a sweep, optionally across worker processes.

    ``workers=1`` (the default) runs in-process and is the reference
    semantics; ``workers > 1`` distributes trials over a process pool and is
    guaranteed to produce identical results.  ``workers=None`` picks
    ``os.cpu_count()``.

    ``queue`` switches execution onto a durable work queue: pass a
    :class:`repro.queue.service.SweepService` and ``run`` plans the sweep
    into idempotent on-disk jobs, executes them with crash-resumable
    leased workers, archives the results, and returns the same bit-identical
    :class:`ResultSet` -- so existing callers opt into durability without
    any API change.

    ``progress`` fires once per trial, when the trial *completes* (the
    parallel path reports completions as they happen, so indices may
    interleave -- results are still assembled in exact grid order).

    A worker process that dies mid-batch (``BrokenProcessPool``) no longer
    discards the sweep: completed batches are kept, and every batch lost
    with the pool is re-run serially once -- surfacing which trial crashed
    if the failure is deterministic.
    """

    def __init__(self, workers: Optional[int] = 1,
                 progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
                 queue=None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive (or None for auto)")
        self.workers = workers
        self.progress = progress
        self.queue = queue

    def run(self, spec: SweepSpec) -> ResultSet:
        """Execute all trials of ``spec`` in deterministic grid order."""
        if self.queue is not None:
            return self.queue.run(spec, workers=self.workers,
                                  progress=self.progress)
        trials = spec.trials()
        workers = self.workers
        if workers is None:
            import os
            workers = os.cpu_count() or 1
        workers = min(workers, len(trials)) or 1

        if workers == 1:
            results = []
            for index, trial in enumerate(trials):
                results.append(run_trial(trial))
                if self.progress is not None:
                    self.progress(index, len(trials), trial)
            return ResultSet(results)

        # Pre-build every distinct trace/baseline in the parent so forked
        # workers inherit them instead of regenerating per worker.
        _warm_caches(trials)
        # Store-aware scheduling: batch trials so each batch replays a
        # single trace.  Fork platforms inherit the warm caches anyway;
        # spawn platforms now load per worker only the traces that
        # worker's batches actually replay (each served from the on-disk
        # trace store rather than regenerated).
        batches = _chunk_groups(group_trials_by_trace(trials), len(trials),
                                workers)
        results: List[Optional[ExperimentResult]] = [None] * len(trials)
        lost: List[List[int]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_to_batch = {
                pool.submit(_run_trial_batch, [trials[i] for i in batch]): batch
                for batch in batches
            }
            for future in as_completed(future_to_batch):
                batch = future_to_batch[future]
                try:
                    batch_results = future.result()
                except BrokenProcessPool:
                    # A worker died (OOM kill, segfault, kill -9).  Every
                    # not-yet-finished future resolves to this error; keep
                    # what completed and re-run the rest serially below.
                    lost.append(batch)
                    continue
                for index, result in zip(batch, batch_results):
                    results[index] = result
                    if self.progress is not None:
                        self.progress(index, len(trials), trials[index])
        for batch in lost:
            for index in batch:
                if results[index] is not None:
                    continue
                try:
                    results[index] = run_trial(trials[index])
                except Exception as error:
                    raise RuntimeError(
                        f"trial {index} ({trials[index].describe()}) "
                        f"crashed the worker pool and failed again when "
                        f"re-run serially"
                    ) from error
                if self.progress is not None:
                    self.progress(index, len(trials), trials[index])
        return ResultSet(results)


def run_sweep(spec: SweepSpec, workers: Optional[int] = 1,
              progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
              ) -> ResultSet:
    """Convenience wrapper: ``SweepExecutor(workers).run(spec)``."""
    return SweepExecutor(workers=workers, progress=progress).run(spec)


__all__ = ["SweepExecutor", "run_sweep", "run_trial", "run_trial_windows",
           "assemble_sampled_trial", "sampled_trial_total",
           "sampled_window_plan", "cached_trace", "cached_baseline",
           "trace_key", "clear_caches", "TraceKey", "get_trace_store",
           "group_trials_by_trace"]
