"""Sweep execution: serial or process-parallel, with shared caches.

The executor turns a :class:`repro.sim.spec.SweepSpec` into a
:class:`repro.sim.resultset.ResultSet`.  Two properties make large grids
tractable:

* **Trace/baseline reuse.**  Synthetic traces are deterministic functions of
  ``(profile, scale, num_cores, seed, num_accesses)`` and the no-DRAM-cache
  baseline replay depends only on the trace and the warm-up split, so both
  are cached process-wide under those keys.  An N-cell grid that shares
  workloads and configurations pays for each distinct trace and baseline
  once, not N times -- and because every design in a cell group replays the
  *same* cached trace, comparisons stay fair automatically.

* **Deterministic parallelism.**  ``workers > 1`` fans trials out to a
  ``ProcessPoolExecutor``.  Each trial is self-contained (its spec carries
  the full configuration, and per-trial seeding is derived from the spec,
  never from process state), so the parallel path produces *bit-identical*
  results to the serial path, in the same deterministic trial order.
  Before forking, the parent pre-builds every distinct trace and baseline
  the grid needs, so workers inherit populated caches and spend their time
  simulating designs, not regenerating traces.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dramcache.stats import DramCacheStats
from repro.sim.experiment import ExperimentResult, ExperimentRunner
from repro.sim.resultset import ResultSet
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.trace.record import MemoryAccess
from repro.workloads.profile import WorkloadProfile

#: Cache key of a materialized trace (see module docstring).
TraceKey = Tuple[WorkloadProfile, int, int, int, int]

# Process-wide caches.  Worker processes get their own copies (pre-seeded by
# fork with the parent's contents); entries are deterministic in the key, so
# sharing across sweeps and processes never changes results.
_TRACE_CACHE: Dict[TraceKey, List[MemoryAccess]] = {}
_BASELINE_CACHE: Dict[Tuple[TraceKey, float], DramCacheStats] = {}


def trace_key(profile: WorkloadProfile,
              config) -> TraceKey:
    """The identity of a materialized trace."""
    return (profile, config.scale, config.num_cores, config.seed,
            config.num_accesses)


def clear_caches() -> None:
    """Drop all cached traces and baselines (mainly for tests)."""
    _TRACE_CACHE.clear()
    _BASELINE_CACHE.clear()


def cached_trace(runner: ExperimentRunner,
                 profile: WorkloadProfile) -> List[MemoryAccess]:
    """The trace for (profile, runner.config), built once per process."""
    key = trace_key(profile, runner.config)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = runner.build_trace(profile)
        _TRACE_CACHE[key] = trace
    return trace


def cached_baseline(runner: ExperimentRunner, profile: WorkloadProfile,
                    trace: Sequence[MemoryAccess]) -> DramCacheStats:
    """The no-cache baseline for (profile, runner.config), replayed once."""
    key = (trace_key(profile, runner.config), runner.config.warmup_fraction)
    baseline = _BASELINE_CACHE.get(key)
    if baseline is None:
        _, measure = runner.split_trace(trace)
        baseline = runner.no_cache_baseline(measure)
        _BASELINE_CACHE[key] = baseline
    return baseline


def _warm_caches(trials: Sequence[ExperimentSpec]) -> None:
    """Build every distinct trace and baseline the trials need, in-process.

    Called before forking a worker pool so the workers inherit fully
    populated caches and never duplicate trace generation (the dominant
    per-trial cost).
    """
    seen = set()
    for trial in trials:
        key = (trace_key(trial.workload, trial.config),
               trial.config.warmup_fraction)
        if key in seen:
            continue
        seen.add(key)
        runner = ExperimentRunner(trial.config, system=trial.system)
        cached_baseline(runner, trial.workload,
                        cached_trace(runner, trial.workload))


def run_trial(trial: ExperimentSpec) -> ExperimentResult:
    """Run one trial, reusing the process-wide trace/baseline caches."""
    runner = ExperimentRunner(trial.config, system=trial.system)
    trace = cached_trace(runner, trial.workload)
    baseline = cached_baseline(runner, trial.workload, trace)
    return runner.run_design(
        trial.design, trial.workload, trial.capacity,
        trace=trace,
        associativity=trial.associativity,
        label=trial.label,
        baseline_stats=baseline,
    )


class SweepExecutor:
    """Runs every trial of a sweep, optionally across worker processes.

    ``workers=1`` (the default) runs in-process and is the reference
    semantics; ``workers > 1`` distributes trials over a process pool and is
    guaranteed to produce identical results.  ``workers=None`` picks
    ``os.cpu_count()``.
    """

    def __init__(self, workers: Optional[int] = 1,
                 progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
                 ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive (or None for auto)")
        self.workers = workers
        self.progress = progress

    def run(self, spec: SweepSpec) -> ResultSet:
        """Execute all trials of ``spec`` in deterministic grid order."""
        trials = spec.trials()
        workers = self.workers
        if workers is None:
            import os
            workers = os.cpu_count() or 1
        workers = min(workers, len(trials)) or 1

        if workers == 1:
            results = []
            for index, trial in enumerate(trials):
                if self.progress is not None:
                    self.progress(index, len(trials), trial)
                results.append(run_trial(trial))
            return ResultSet(results)

        # Pre-build every distinct trace/baseline in the parent so forked
        # workers inherit them instead of regenerating per worker.
        _warm_caches(trials)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_trial, trial) for trial in trials]
            results = []
            for index, (trial, future) in enumerate(zip(trials, futures)):
                if self.progress is not None:
                    self.progress(index, len(trials), trial)
                results.append(future.result())
        return ResultSet(results)


def run_sweep(spec: SweepSpec, workers: Optional[int] = 1,
              progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
              ) -> ResultSet:
    """Convenience wrapper: ``SweepExecutor(workers).run(spec)``."""
    return SweepExecutor(workers=workers, progress=progress).run(spec)


__all__ = ["SweepExecutor", "run_sweep", "run_trial", "cached_trace",
           "cached_baseline", "trace_key", "clear_caches", "TraceKey"]
