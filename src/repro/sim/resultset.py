"""ResultSet: a queryable, serializable container of experiment results.

A :class:`ResultSet` wraps an ordered list of
:class:`repro.sim.experiment.ExperimentResult` records and provides

* **querying** -- :meth:`filter` by field values or predicate,
  :meth:`group_by` one or more fields, :meth:`metric` extraction,
  :meth:`best_by` selection;
* **presentation** -- :meth:`table` renders the fixed-width summary the CLI
  and the examples print;
* **persistence** -- :meth:`to_json`/:meth:`from_json` and
  :meth:`to_csv`/:meth:`from_csv` round-trip *losslessly* (floats survive via
  ``repr``), so every benchmark figure can be regenerated from cached results
  without re-running a sweep.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.sim.experiment import ExperimentResult

#: Schema tag embedded in JSON exports (bump on incompatible field changes).
JSON_SCHEMA = "repro.resultset/v1"

# Field typing for lossless CSV round-trips.  Every ExperimentResult field
# must appear in exactly one of these groups (checked at import time below).
_STR_FIELDS = ("design", "workload", "capacity")
_INT_FIELDS = (
    "scale", "accesses_measured",
    "offchip_demand_blocks", "offchip_prefetch_blocks",
    "offchip_writeback_blocks", "offchip_row_activations",
    "stacked_row_activations",
)
_FLOAT_FIELDS = (
    "miss_ratio", "hit_ratio",
    "average_hit_latency", "average_miss_latency", "average_access_latency",
    "offchip_blocks_per_access",
)
_OPTIONAL_FLOAT_FIELDS = (
    "footprint_accuracy", "footprint_overfetch", "way_prediction_accuracy",
    "miss_prediction_accuracy", "miss_predictor_overfetch",
    "speedup_vs_no_cache", "user_ipc",
)
_CSV_FIELDS = _STR_FIELDS + _INT_FIELDS + _FLOAT_FIELDS + _OPTIONAL_FLOAT_FIELDS
#: Prefix of the flattened ``extra`` columns in CSV exports.
_EXTRA_PREFIX = "extra:"

_RESULT_FIELD_NAMES = tuple(f.name for f in fields(ExperimentResult))
assert set(_CSV_FIELDS) == set(_RESULT_FIELD_NAMES) - {"extra"}, (
    "resultset.py field groups are out of sync with ExperimentResult"
)


def _format_cell(value: Union[None, int, float, str]) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)  # round-trips exactly in Python 3
    return str(value)


class ResultSet:
    """Ordered collection of :class:`ExperimentResult` records."""

    def __init__(self, results: Iterable[ExperimentResult] = ()) -> None:
        self._results: List[ExperimentResult] = list(results)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self._results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self._results[index])
        return self._results[index]

    def __bool__(self) -> bool:
        return bool(self._results)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._results == other._results

    def __repr__(self) -> str:
        return f"ResultSet({len(self._results)} results)"

    def append(self, result: ExperimentResult) -> None:
        self._results.append(result)

    def extend(self, results: Iterable[ExperimentResult]) -> None:
        self._results.extend(results)

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Optional[Callable[[ExperimentResult], bool]] = None,
               **field_equals) -> "ResultSet":
        """Results matching the predicate and/or exact field values.

        ``rs.filter(design="unison", capacity="1GB")`` selects one design at
        one capacity across all workloads.
        """
        unknown = set(field_equals) - set(_RESULT_FIELD_NAMES)
        if unknown:
            raise ValueError(f"unknown result fields: {sorted(unknown)}")

        def matches(result: ExperimentResult) -> bool:
            if predicate is not None and not predicate(result):
                return False
            return all(getattr(result, name) == value
                       for name, value in field_equals.items())

        return ResultSet(r for r in self._results if matches(r))

    def group_by(self, *field_names: str) -> "Dict[object, ResultSet]":
        """Group into {key: ResultSet}, insertion-ordered.

        A single field yields its value as the key; several fields yield a
        tuple key.
        """
        if not field_names:
            raise ValueError("group_by needs at least one field name")
        unknown = set(field_names) - set(_RESULT_FIELD_NAMES)
        if unknown:
            raise ValueError(f"unknown result fields: {sorted(unknown)}")
        groups: Dict[object, ResultSet] = {}
        for result in self._results:
            key_parts = tuple(getattr(result, name) for name in field_names)
            key = key_parts[0] if len(field_names) == 1 else key_parts
            groups.setdefault(key, ResultSet()).append(result)
        return groups

    def metric(self, name: str) -> List[float]:
        """The values of one metric, in result order."""
        if name not in _RESULT_FIELD_NAMES:
            raise ValueError(f"unknown result field {name!r}")
        return [getattr(r, name) for r in self._results]

    def best_by(self, metric: str, minimize: bool = True) -> ExperimentResult:
        """The result with the smallest (or largest) value of ``metric``."""
        if not self._results:
            raise ValueError("ResultSet is empty")
        values = self.metric(metric)
        if any(v is None for v in values):
            raise ValueError(f"metric {metric!r} is unset for some results")
        chooser = min if minimize else max
        return chooser(self._results, key=lambda r: getattr(r, metric))

    @property
    def designs(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.design for r in self._results))

    @property
    def workloads(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.workload for r in self._results))

    @property
    def capacities(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.capacity for r in self._results))

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    #: Default table columns: (header, formatter).
    _TABLE_COLUMNS: Sequence[Tuple[str, Callable[[ExperimentResult], str]]] = (
        ("design", lambda r: r.design),
        ("workload", lambda r: r.workload),
        ("capacity", lambda r: r.capacity),
        ("miss%", lambda r: f"{r.miss_ratio_percent:.1f}"),
        ("hit lat", lambda r: f"{r.average_hit_latency:.1f}"),
        ("miss lat", lambda r: f"{r.average_miss_latency:.1f}"),
        ("blk/acc", lambda r: f"{r.offchip_blocks_per_access:.2f}"),
        ("speedup", lambda r: ("" if r.speedup_vs_no_cache is None
                               else f"{r.speedup_vs_no_cache:.2f}x")),
    )

    def table(self) -> str:
        """Fixed-width summary table of the headline metrics."""
        header = [name for name, _ in self._TABLE_COLUMNS]
        rows = [[fmt(r) for _, fmt in self._TABLE_COLUMNS]
                for r in self._results]
        widths = [max(len(header[i]), *(len(row[i]) for row in rows))
                  if rows else len(header[i])
                  for i in range(len(header))]
        lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_records(self) -> List[dict]:
        """Plain-dict form of every result (JSON-ready)."""
        return [asdict(r) for r in self._results]

    def to_json(self, path: Optional[Union[str, Path]] = None,
                indent: int = 2) -> str:
        """Serialize to JSON; also write to ``path`` when given."""
        text = json.dumps(
            {"schema": JSON_SCHEMA, "results": self.to_records()},
            indent=indent,
        )
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "ResultSet":
        """Rebuild from :meth:`to_records`-style dicts (exact inverse)."""
        return cls(ExperimentResult(**record) for record in records)

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ResultSet":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (isinstance(source, str)
                                        and not source.lstrip().startswith(("{", "["))):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        payload = json.loads(text)
        records = payload["results"] if isinstance(payload, dict) else payload
        return cls.from_records(records)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialize to CSV; also write to ``path`` when given.

        ``extra`` metrics are flattened into ``extra:<key>`` columns (the
        union of keys across all results).
        """
        extra_keys = sorted({key for r in self._results for key in r.extra})
        header = list(_CSV_FIELDS) + [_EXTRA_PREFIX + k for k in extra_keys]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for result in self._results:
            row = [_format_cell(getattr(result, name)) for name in _CSV_FIELDS]
            row += [_format_cell(result.extra.get(k)) for k in extra_keys]
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_csv(cls, source: Union[str, Path]) -> "ResultSet":
        """Load from a CSV string or a path to a CSV file."""
        if isinstance(source, Path) or (isinstance(source, str)
                                        and "\n" not in source):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        reader = csv.reader(io.StringIO(text))
        rows = list(reader)
        if not rows:
            return cls()
        header, data_rows = rows[0], rows[1:]
        results = []
        for row in data_rows:
            kwargs: Dict[str, object] = {}
            extra: Dict[str, float] = {}
            for name, cell in zip(header, row):
                if name.startswith(_EXTRA_PREFIX):
                    if cell != "":
                        extra[name[len(_EXTRA_PREFIX):]] = float(cell)
                elif name in _STR_FIELDS:
                    kwargs[name] = cell
                elif name in _INT_FIELDS:
                    kwargs[name] = int(cell)
                elif name in _FLOAT_FIELDS:
                    kwargs[name] = float(cell)
                elif name in _OPTIONAL_FLOAT_FIELDS:
                    kwargs[name] = None if cell == "" else float(cell)
                else:
                    raise ValueError(f"unknown CSV column {name!r}")
            results.append(ExperimentResult(extra=extra, **kwargs))
        return cls(results)


__all__ = ["ResultSet", "JSON_SCHEMA"]
