"""Alloy Cache (Qureshi & Loh, MICRO 2012) -- the block-based baseline.

Alloy Cache stores each 64-byte block together with its tag as a 72-byte
tag-and-data (TAD) unit, organizes the cache direct-mapped so the location of
a block is known without searching, and streams the whole TAD in one DRAM
access, breaking tag-then-data serialization.  A small per-core miss predictor
(MAP-I style) lets predicted misses bypass the DRAM-cache lookup and go to
off-chip memory immediately.

Consequences the evaluation depends on (Section II-A):

* hits are fast (one DRAM access, no SRAM tag array), but
* only temporal reuse produces hits, so the miss ratio on server workloads is
  high, and
* mispredicted hits pay lookup-then-memory serialization, while mispredicted
  misses waste off-chip bandwidth.

The class is a named composition on the
:class:`repro.dramcache.composed.ComposedDramCache` engine: direct-mapped TAD
tags, the MAP-I hit predictor, and demand-block fetching.  The canonical
``alloy`` design name is registered as a spec in
:mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.config.cache_configs import AlloyCacheConfig
from repro.dramcache.components import (
    DemandBlockFetch,
    DirectMappedBlockTags,
    DisabledMissPrediction,
    MissPredictionPolicy,
    WritebackDirtyPolicy,
)
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.miss import MissPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext


class AlloyCache(ComposedDramCache):
    """Direct-mapped, block-based DRAM cache with TADs and a miss predictor."""

    design_name = "alloy"

    def __init__(self, config: Optional[AlloyCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 num_cores: int = 16,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or AlloyCacheConfig()
        self.config.validate()
        tags = DirectMappedBlockTags(self.config)
        if self.config.use_miss_predictor:
            hit_predictor = MissPredictionPolicy(
                MissPredictor(
                    num_cores=num_cores,
                    entries_per_core=(
                        self.config.miss_predictor_entries_per_core
                    ),
                ),
                latency_cycles=self.config.miss_predictor_latency_cycles,
            )
        else:
            hit_predictor = DisabledMissPrediction()
        super().__init__(
            tags=tags,
            hit_predictor=hit_predictor,
            fetch=DemandBlockFetch(),
            writeback=WritebackDirtyPolicy(),
            stacked=stacked,
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "AlloyCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("direct-mapped",),
                           hit_predictor=("map-i",), fetch=("demand",))
        tags = take_params(spec.tags, "tag organization", ("page_blocks",))
        if tags.get("page_blocks", 1) != 1:
            raise ValueError(
                "the AlloyCache model class is block-granular; use "
                "model='composed' for multi-block page_blocks hybrids"
            )
        hit = take_params(spec.hit_predictor, "hit predictor",
                          ("entries_per_core", "latency_cycles"))
        take_params(spec.fetch, "fetch policy", ())
        overrides = {}
        if "entries_per_core" in hit:
            overrides["miss_predictor_entries_per_core"] = (
                hit["entries_per_core"])
        if "latency_cycles" in hit:
            overrides["miss_predictor_latency_cycles"] = hit["latency_cycles"]
        config = AlloyCacheConfig(capacity=context.scaled_capacity_bytes,
                                  **overrides)
        return cls(config, num_cores=context.num_cores)

    # ------------------------------------------------------------------ #
    # Compatibility accessors into the components
    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        """Total number of block frames (== number of sets, direct-mapped)."""
        return self.tags.num_blocks

    @property
    def _tags(self) -> List[int]:
        return self.tags.tag_array

    @property
    def _dirty(self) -> List[bool]:
        return self.tags.dirty
