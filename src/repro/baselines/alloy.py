"""Alloy Cache (Qureshi & Loh, MICRO 2012) -- the block-based baseline.

Alloy Cache stores each 64-byte block together with its tag as a 72-byte
tag-and-data (TAD) unit, organizes the cache direct-mapped so the location of
a block is known without searching, and streams the whole TAD in one DRAM
access, breaking tag-then-data serialization.  A small per-core miss predictor
(MAP-I style) lets predicted misses bypass the DRAM-cache lookup and go to
off-chip memory immediately.

Consequences the evaluation depends on (Section II-A):

* hits are fast (one DRAM access, no SRAM tag array), but
* only temporal reuse produces hits, so the miss ratio on server workloads is
  high, and
* mispredicted hits pay lookup-then-memory serialization, while mispredicted
  misses waste off-chip bandwidth.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.cache_configs import AlloyCacheConfig
from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.miss import MissPredictor
from repro.sim.registry import DesignBuildContext, register_design
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess


class AlloyCache(DramCacheModel):
    """Direct-mapped, block-based DRAM cache with TADs and a miss predictor."""

    design_name = "alloy"

    #: Warm state beyond the base's: the direct-mapped tag/dirty arrays and
    #: the per-core miss-predictor tables.
    _STATE_ATTRS = ("_tags", "_dirty", "miss_predictor")

    def __init__(self, config: Optional[AlloyCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 num_cores: int = 16,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or AlloyCacheConfig()
        self.config.validate()
        super().__init__(self.config.capacity_bytes, stacked, memory,
                         interarrival_cycles=interarrival_cycles)

        self.num_blocks = self.config.num_blocks
        # Direct-mapped arrays: tag per frame (-1 == invalid) and a dirty flag.
        self._tags: List[int] = [-1] * self.num_blocks
        self._dirty: List[bool] = [False] * self.num_blocks

        self.miss_predictor: Optional[MissPredictor] = None
        if self.config.use_miss_predictor:
            self.miss_predictor = MissPredictor(
                num_cores=num_cores,
                entries_per_core=self.config.miss_predictor_entries_per_core,
            )

    # ------------------------------------------------------------------ #
    def _frame_of(self, block_address: int) -> int:
        return block_address % self.num_blocks

    def _tag_of(self, block_address: int) -> int:
        return block_address // self.num_blocks

    def _row_of_frame(self, frame: int) -> "tuple[int, int]":
        """(DRAM row, byte offset of the TAD within the row) for a frame."""
        row = frame // self.config.blocks_per_row
        slot = frame % self.config.blocks_per_row
        return row, slot * self.config.tad_bytes

    # ------------------------------------------------------------------ #
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Service one L2-miss request."""
        block_address = request.block_address
        frame = self._frame_of(block_address)
        tag = self._tag_of(block_address)
        is_hit = self._tags[frame] == tag

        predicted_miss = False
        predictor_latency = 0
        if self.miss_predictor is not None:
            predicted_miss = self.miss_predictor.record(
                request.core_id, request.pc, was_miss=not is_hit
            )
            predictor_latency = self.config.miss_predictor_latency_cycles

        if is_hit:
            latency, extra_fetch = self._service_hit(
                request, frame, predicted_miss, predictor_latency
            )
            self.cache_stats.record_hit(latency, request.is_write)
            return DramCacheAccessResult(
                hit=True, latency_cycles=latency,
                offchip_blocks_fetched=extra_fetch,
            )

        latency, written = self._service_miss(
            request, frame, tag, predicted_miss, predictor_latency
        )
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False, latency_cycles=latency,
            offchip_blocks_fetched=1, offchip_blocks_written=written,
        )

    # ------------------------------------------------------------------ #
    def _tad_read_latency(self, frame: int) -> int:
        row, offset = self._row_of_frame(frame)
        result = self.stacked.read(row, offset, self.config.tad_bytes, self._now)
        return result.latency_cpu_cycles

    def _service_hit(self, request: MemoryAccess, frame: int,
                     predicted_miss: bool, predictor_latency: int) -> "tuple[int, int]":
        """A true hit; returns (latency, extra off-chip blocks fetched)."""
        extra_fetch = 0
        tad_latency = self._tad_read_latency(frame)
        if predicted_miss:
            # False miss prediction: an unnecessary off-chip fetch was issued
            # in parallel; the data still returns from the (faster) cache, but
            # the memory request wastes bandwidth (Section II-A).
            self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_prefetch_blocks += 1
            extra_fetch = 1
        if request.is_write:
            row, offset = self._row_of_frame(frame)
            self.stacked.write(row, offset, self.config.tad_bytes, self._now)
            self._dirty[frame] = True
        return predictor_latency + tad_latency, extra_fetch

    def _service_miss(self, request: MemoryAccess, frame: int, tag: int,
                      predicted_miss: bool, predictor_latency: int) -> "tuple[int, int]":
        """A true miss; returns (latency, dirty blocks written back)."""
        if predicted_miss:
            # Correctly predicted miss: the off-chip request is issued
            # immediately, hiding the DRAM-cache lookup entirely.
            offchip_latency = self.memory.read_block(request.block_address, self._now)
            latency = predictor_latency + offchip_latency
        else:
            # False hit prediction: the lookup happens first and only then is
            # the off-chip request issued (tag-then-memory serialization).
            lookup_latency = self._tad_read_latency(frame)
            offchip_latency = self.memory.read_block(request.block_address, self._now)
            latency = predictor_latency + lookup_latency + offchip_latency
        self.cache_stats.offchip_demand_blocks += 1

        written = self._install(request, frame, tag)
        return latency, written

    def _install(self, request: MemoryAccess, frame: int, tag: int) -> int:
        """Install the fetched block, writing back a dirty victim if needed."""
        written = 0
        if self._tags[frame] >= 0 and self._dirty[frame]:
            victim_block = self._tags[frame] * self.num_blocks + frame
            self.memory.write_block(victim_block, self._now)
            self.cache_stats.offchip_writeback_blocks += 1
            written = 1
        if self._tags[frame] >= 0:
            self.cache_stats.pages_evicted += 1
        self._tags[frame] = tag
        self._dirty[frame] = request.is_write
        self.cache_stats.pages_allocated += 1
        row, offset = self._row_of_frame(frame)
        self.stacked.write(row, offset, self.config.tad_bytes, self._now)
        return written

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Reset cache and predictor statistics; contents and training persist."""
        super().reset_stats()
        if self.miss_predictor is not None:
            self.miss_predictor.reset_stats()

    @property
    def miss_prediction_accuracy(self) -> float:
        """Fraction of misses correctly identified (Table V's "MP Accuracy")."""
        if self.miss_predictor is None:
            return 0.0
        return self.miss_predictor.miss_identification.value

    @property
    def miss_predictor_overfetch(self) -> float:
        """Extra off-chip fetches caused by false miss predictions, per hit."""
        if self.miss_predictor is None or self.cache_stats.hits == 0:
            return 0.0
        return self.miss_predictor.false_misses / self.cache_stats.hits

    def extra_metrics(self) -> "dict[str, float]":
        """Miss-predictor metrics reported in Table V."""
        return {
            "miss_prediction_accuracy": self.miss_prediction_accuracy,
            "miss_predictor_overfetch": self.miss_predictor_overfetch,
        }

    def stats(self) -> StatGroup:
        """Design, predictor and device statistics."""
        group = super().stats()
        if self.miss_predictor is not None:
            group.merge_child(self.miss_predictor.stats())
        return group


@register_design("alloy",
                 description="direct-mapped tag-and-data block cache with a "
                             "per-core miss predictor (Qureshi & Loh)")
def _build_alloy(context: DesignBuildContext) -> AlloyCache:
    return AlloyCache(AlloyCacheConfig(capacity=context.scaled_capacity_bytes),
                      num_cores=context.num_cores)
