"""Loh-Hill cache (MICRO 2011) -- the earlier tags-in-DRAM block-based design.

Included as an extension beyond the paper's three evaluated designs: Section
II-A uses it to motivate Alloy Cache.  Each DRAM row forms one set: the first
few block slots hold the tags for the remaining data blocks (29 data ways per
2 KB row in the original design; the split is computed from the row size), so
a lookup reads the tag blocks first and, on a match, issues a separate read
for the data block -- the two accesses are serialized, but the scheduler keeps
the row open so the data read is a row-buffer hit.  An on-chip "MissMap"
records block presence so true misses can skip the in-DRAM tag lookup; its
lookup latency is paid by every request.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.replacement import LruPolicy
from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.sim.registry import DesignBuildContext, register_design
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess
from repro.utils.units import parse_size, SizeLike


class LohHillCache(DramCacheModel):
    """Set-per-row, tags-in-DRAM block cache with a MissMap front end."""

    design_name = "loh_hill"

    #: Warm state beyond the base's: per-set tag/dirty arrays, LRU state,
    #: and the MissMap presence bits.
    _STATE_ATTRS = ("_tags", "_dirty", "_lru", "_missmap")

    #: Bytes of tag metadata kept per data block (tag + state bits).
    TAG_ENTRY_BYTES = 6

    def __init__(self, capacity: SizeLike = "1GB",
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 row_buffer_size: int = 8 * 1024,
                 block_size: int = 64,
                 missmap_latency_cycles: int = 8,
                 interarrival_cycles: int = 6) -> None:
        super().__init__(parse_size(capacity), stacked, memory,
                         interarrival_cycles=interarrival_cycles)
        if row_buffer_size % block_size:
            raise ValueError("row_buffer_size must be a multiple of block_size")
        self.block_size = block_size
        self.row_buffer_size = row_buffer_size
        self.missmap_latency_cycles = missmap_latency_cycles

        blocks_per_row = row_buffer_size // block_size
        # Reserve the smallest number of block slots whose bytes can hold the
        # tag entries of all remaining slots (2 KB rows -> 3 tag + 29 data
        # blocks, exactly the original design; 8 KB rows -> 11 tag + 117 data).
        tag_blocks = 1
        while (blocks_per_row - tag_blocks) * self.TAG_ENTRY_BYTES > tag_blocks * block_size:
            tag_blocks += 1
        self.tag_blocks_per_row = tag_blocks
        #: Data blocks per set.
        self.associativity = blocks_per_row - tag_blocks
        self.num_sets = self.capacity_bytes // row_buffer_size
        if self.num_sets < 1:
            raise ValueError("capacity must hold at least one DRAM row")

        self._tags: List[List[int]] = [
            [-1] * self.associativity for _ in range(self.num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * self.associativity for _ in range(self.num_sets)
        ]
        self._lru: List[LruPolicy] = [
            LruPolicy(self.associativity) for _ in range(self.num_sets)
        ]
        # The MissMap: presence bits for every block the cache may hold.
        self._missmap: Dict[int, bool] = {}

    # ------------------------------------------------------------------ #
    def _locate(self, block_address: int) -> "tuple[int, int]":
        return block_address % self.num_sets, block_address // self.num_sets

    def _find_way(self, set_index: int, tag: int) -> int:
        row_tags = self._tags[set_index]
        for way, existing in enumerate(row_tags):
            if existing == tag:
                return way
        return -1

    def _tag_read(self, set_index: int) -> int:
        result = self.stacked.read(
            set_index, 0, self.tag_blocks_per_row * self.block_size, self._now
        )
        return result.latency_cpu_cycles

    def _data_read(self, set_index: int, way: int) -> int:
        offset = (self.tag_blocks_per_row + way) * self.block_size
        result = self.stacked.read(set_index, offset, self.block_size, self._now)
        return result.latency_cpu_cycles

    # ------------------------------------------------------------------ #
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        set_index, tag = self._locate(request.block_address)
        way = self._find_way(set_index, tag)

        if not self._missmap.get(request.block_address, False):
            # MissMap says the block is absent: go straight to memory.
            offchip = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
            written = self._install(request, set_index, tag)
            latency = self.missmap_latency_cycles + offchip
            self.cache_stats.record_miss(latency, request.is_write)
            return DramCacheAccessResult(
                hit=False, latency_cycles=latency,
                offchip_blocks_fetched=1, offchip_blocks_written=written,
            )

        # MissMap says present: tag read, then the data read (serialized; the
        # data read hits the open row).
        tag_latency = self._tag_read(set_index)
        data_latency = self._data_read(set_index, max(way, 0))
        self._lru[set_index].on_access(max(way, 0))
        if request.is_write:
            self._dirty[set_index][max(way, 0)] = True
        latency = self.missmap_latency_cycles + tag_latency + data_latency
        self.cache_stats.record_hit(latency, request.is_write)
        return DramCacheAccessResult(hit=True, latency_cycles=latency)

    def _install(self, request: MemoryAccess, set_index: int, tag: int) -> int:
        """Allocate the fetched block; returns dirty blocks written back."""
        written = 0
        victim_way = self._lru[set_index].victim(
            [existing >= 0 for existing in self._tags[set_index]]
        )
        victim_tag = self._tags[set_index][victim_way]
        if victim_tag >= 0:
            victim_block = victim_tag * self.num_sets + set_index
            self._missmap.pop(victim_block, None)
            if self._dirty[set_index][victim_way]:
                self.memory.write_block(victim_block, self._now)
                self.cache_stats.offchip_writeback_blocks += 1
                written = 1
            self.cache_stats.pages_evicted += 1
        self._tags[set_index][victim_way] = tag
        self._dirty[set_index][victim_way] = request.is_write
        self._lru[set_index].on_fill(victim_way)
        self._missmap[request.block_address] = True
        self.cache_stats.pages_allocated += 1
        # Update the in-row tag block and write the data block.
        self.stacked.write(set_index, 0, self.block_size, self._now)
        self.stacked.write(
            set_index, (self.tag_blocks_per_row + victim_way) * self.block_size,
            self.block_size, self._now,
        )
        return written

    # ------------------------------------------------------------------ #
    def stats(self) -> StatGroup:
        """Design and device statistics plus MissMap occupancy."""
        group = super().stats()
        group.set("missmap_entries", len(self._missmap))
        return group


@register_design("loh_hill",
                 description="tags-in-DRAM block cache with a MissMap "
                             "(Loh & Hill, MICRO'11; extension)")
def _build_loh_hill(context: DesignBuildContext) -> LohHillCache:
    return LohHillCache(capacity=context.scaled_capacity_bytes)
