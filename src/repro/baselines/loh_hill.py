"""Loh-Hill cache (MICRO 2011) -- the earlier tags-in-DRAM block-based design.

Included as an extension beyond the paper's three evaluated designs: Section
II-A uses it to motivate Alloy Cache.  Each DRAM row forms one set: the first
few block slots hold the tags for the remaining data blocks (29 data ways per
2 KB row in the original design; the split is computed from the row size), so
a lookup reads the tag blocks first and, on a match, issues a separate read
for the data block -- the two accesses are serialized, but the scheduler keeps
the row open so the data read is a row-buffer hit.  An on-chip "MissMap"
records block presence so true misses can skip the in-DRAM tag lookup; its
lookup latency is paid by every request.

The class is a named composition on the
:class:`repro.dramcache.composed.ComposedDramCache` engine: the MissMap tag
organization with demand-block fetching.  The canonical ``loh_hill`` design
name is registered as a spec in :mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.dramcache.components import (
    DemandBlockFetch,
    MissMapBlockTags,
    WritebackDirtyPolicy,
)
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.utils.units import parse_size, SizeLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext


class LohHillCache(ComposedDramCache):
    """Set-per-row, tags-in-DRAM block cache with a MissMap front end."""

    design_name = "loh_hill"

    #: Bytes of tag metadata kept per data block (tag + state bits).
    TAG_ENTRY_BYTES = MissMapBlockTags.TAG_ENTRY_BYTES

    def __init__(self, capacity: SizeLike = "1GB",
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 row_buffer_size: int = 8 * 1024,
                 block_size: int = 64,
                 missmap_latency_cycles: int = 8,
                 interarrival_cycles: int = 6) -> None:
        tags = MissMapBlockTags(
            parse_size(capacity),
            row_buffer_size=row_buffer_size,
            block_size=block_size,
            missmap_latency_cycles=missmap_latency_cycles,
        )
        super().__init__(
            tags=tags,
            fetch=DemandBlockFetch(),
            writeback=WritebackDirtyPolicy(),
            stacked=stacked,
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "LohHillCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("missmap",), hit_predictor=("none",),
                           fetch=("demand",))
        tags = take_params(spec.tags, "tag organization",
                           ("missmap_latency_cycles",))
        take_params(spec.fetch, "fetch policy", ())
        overrides = {}
        if "missmap_latency_cycles" in tags:
            overrides["missmap_latency_cycles"] = tags["missmap_latency_cycles"]
        return cls(capacity=context.scaled_capacity_bytes, **overrides)

    # ------------------------------------------------------------------ #
    # Compatibility accessors into the components
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        return self.tags.block_size

    @property
    def row_buffer_size(self) -> int:
        return self.tags.row_buffer_size

    @property
    def missmap_latency_cycles(self) -> int:
        return self.tags.missmap_latency_cycles

    @property
    def tag_blocks_per_row(self) -> int:
        return self.tags.tag_blocks_per_row

    @property
    def associativity(self) -> int:
        """Data blocks per set."""
        return self.tags.associativity

    @property
    def num_sets(self) -> int:
        return self.tags.num_sets

    @property
    def _tags(self) -> List[List[int]]:
        return self.tags.tag_array

    @property
    def _dirty(self) -> List[List[bool]]:
        return self.tags.dirty

    @property
    def _lru(self):
        return self.tags.lru

    @property
    def _missmap(self) -> Dict[int, bool]:
        return self.tags.missmap
