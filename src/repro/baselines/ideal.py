"""Ideal latency-optimized DRAM cache.

The reference point of Figures 7 and 8: a cache that never misses and has no
tag-access overhead, equivalent to treating the die-stacked DRAM as main
memory.  Every request costs exactly one stacked-DRAM block read and generates
no off-chip traffic.

The class is a named composition on the
:class:`repro.dramcache.composed.ComposedDramCache` engine: the always-hit
tag organization and nothing else.  The canonical ``ideal`` design name is
registered as a spec in :mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.dramcache.components import AlwaysHitTags
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.utils.units import parse_size, SizeLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext


class IdealCache(ComposedDramCache):
    """A 100%-hit-rate, zero-tag-overhead DRAM cache."""

    design_name = "ideal"

    def __init__(self, capacity: SizeLike = "1GB",
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 row_buffer_size: int = 8 * 1024,
                 block_size: int = 64,
                 interarrival_cycles: int = 6) -> None:
        tags = AlwaysHitTags(
            parse_size(capacity),
            row_buffer_size=row_buffer_size,
            block_size=block_size,
        )
        super().__init__(
            tags=tags,
            stacked=stacked,
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "IdealCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("always-hit",),
                           hit_predictor=("none",), fetch=("demand",))
        take_params(spec.tags, "tag organization", ())
        return cls(capacity=context.scaled_capacity_bytes)

    # ------------------------------------------------------------------ #
    @property
    def row_buffer_size(self) -> int:
        return self.tags.row_buffer_size

    @property
    def block_size(self) -> int:
        return self.tags.block_size
