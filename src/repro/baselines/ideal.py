"""Ideal latency-optimized DRAM cache.

The reference point of Figures 7 and 8: a cache that never misses and has no
tag-access overhead, equivalent to treating the die-stacked DRAM as main
memory.  Every request costs exactly one stacked-DRAM block read and generates
no off-chip traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.sim.registry import DesignBuildContext, register_design
from repro.trace.record import MemoryAccess
from repro.utils.units import parse_size, SizeLike


class IdealCache(DramCacheModel):
    """A 100%-hit-rate, zero-tag-overhead DRAM cache."""

    design_name = "ideal"

    #: No design-local warm state: a 100%-hit cache has no tags, predictors,
    #: or replacement metadata to checkpoint.
    _STATE_ATTRS: "tuple[str, ...]" = ()

    def __init__(self, capacity: SizeLike = "1GB",
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 row_buffer_size: int = 8 * 1024,
                 block_size: int = 64,
                 interarrival_cycles: int = 6) -> None:
        super().__init__(parse_size(capacity), stacked, memory,
                         interarrival_cycles=interarrival_cycles)
        self.row_buffer_size = row_buffer_size
        self.block_size = block_size

    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Every access hits and costs one stacked-DRAM block read."""
        row = request.address // self.row_buffer_size
        offset = (request.address % self.row_buffer_size) // self.block_size * self.block_size
        result = self.stacked.read(row, offset, self.block_size, self._now)
        latency = result.latency_cpu_cycles
        self.cache_stats.record_hit(latency, request.is_write)
        return DramCacheAccessResult(hit=True, latency_cycles=latency)


@register_design("ideal",
                 description="100% hit rate, zero tag overhead -- the "
                             "latency-optimized reference point of Figs. 7-8")
def _build_ideal(context: DesignBuildContext) -> IdealCache:
    return IdealCache(capacity=context.scaled_capacity_bytes)
