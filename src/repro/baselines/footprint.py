"""Footprint Cache (Jevdjic, Volos & Falsafi, ISCA 2013) -- the page-based baseline.

Footprint Cache allocates 2 KB pages but fetches only each page's predicted
footprint, giving high hit rates with modest off-chip traffic.  Its tags live
in an on-chip SRAM array, which keeps lookups off the DRAM but makes the tag
storage -- and its latency -- grow with capacity (Table IV): ~3 MB at 512 MB,
~50 MB at 8 GB, at which point the design is no longer practical.  The model
charges every access the capacity-dependent SRAM tag latency and otherwise
follows the same footprint-prediction flow as Unison Cache.

The class is a named composition on the
:class:`repro.dramcache.composed.ComposedDramCache` engine: SRAM page tags
plus footprint fetching -- the *same*
:class:`~repro.dramcache.components.FootprintFetch` component Unison uses,
which is exactly the paper's point.  The canonical ``footprint`` design name
is registered as a spec in :mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.config.cache_configs import (
    FootprintCacheConfig,
    footprint_tag_array_for_capacity,
)
from repro.dramcache.components import (
    FootprintFetch,
    PageFrame,
    SramPageTags,
    WritebackDirtyPolicy,
)
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.footprint import FootprintPredictor
from repro.predictors.singleton import SingletonTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext

#: Backwards-compatible alias: the page-frame record used to be private here.
_PageFrame = PageFrame


class FootprintCache(ComposedDramCache):
    """Page-based DRAM cache with SRAM tags and footprint prediction."""

    design_name = "footprint"

    def __init__(self, config: Optional[FootprintCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 tag_latency_cycles: Optional[int] = None,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or FootprintCacheConfig()
        self.config.validate()
        tags = SramPageTags(self.config, tag_latency_cycles=tag_latency_cycles)
        fetch = FootprintFetch(
            FootprintPredictor(
                blocks_per_page=self.config.blocks_per_page,
                num_entries=self.config.footprint_table_entries,
            ),
            SingletonTable(
                num_entries=self.config.singleton_table_entries,
                blocks_per_page=self.config.blocks_per_page,
            ),
        )
        super().__init__(
            tags=tags,
            fetch=fetch,
            writeback=WritebackDirtyPolicy(),
            stacked=stacked,
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "FootprintCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("sram-page",), hit_predictor=("none",),
                           fetch=("footprint",))
        tags = take_params(spec.tags, "tag organization",
                           ("page_size", "associativity"))
        fetch = take_params(spec.fetch, "fetch policy",
                            ("table_entries", "singleton_entries"))
        overrides = {}
        if context.associativity is not None:
            overrides["associativity"] = context.associativity
        elif "associativity" in tags:
            overrides["associativity"] = tags["associativity"]
        if "page_size" in tags:
            overrides["page_size"] = tags["page_size"]
        if "table_entries" in fetch:
            overrides["footprint_table_entries"] = fetch["table_entries"]
        if "singleton_entries" in fetch:
            overrides["singleton_table_entries"] = fetch["singleton_entries"]
        # The SRAM tag latency is dictated by the *paper* capacity (Table IV).
        tag_latency = footprint_tag_array_for_capacity(
            context.paper_capacity_bytes
        ).lookup_latency_cycles
        return cls(
            FootprintCacheConfig(capacity=context.scaled_capacity_bytes,
                                 **overrides),
            tag_latency_cycles=tag_latency,
        )

    # ------------------------------------------------------------------ #
    # Compatibility accessors into the components
    # ------------------------------------------------------------------ #
    @property
    def tag_latency_cycles(self) -> int:
        """SRAM tag lookup latency charged on every access."""
        return self.tags.tag_latency_cycles

    @property
    def num_sets(self) -> int:
        return self.tags.num_sets

    @property
    def associativity(self) -> int:
        return self.tags.associativity

    @property
    def _frames(self) -> List[List[PageFrame]]:
        return self.tags.frames

    @property
    def _lru(self):
        return self.tags.lru
