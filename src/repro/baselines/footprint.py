"""Footprint Cache (Jevdjic, Volos & Falsafi, ISCA 2013) -- the page-based baseline.

Footprint Cache allocates 2 KB pages but fetches only each page's predicted
footprint, giving high hit rates with modest off-chip traffic.  Its tags live
in an on-chip SRAM array, which keeps lookups off the DRAM but makes the tag
storage -- and its latency -- grow with capacity (Table IV): ~3 MB at 512 MB,
~50 MB at 8 GB, at which point the design is no longer practical.  The model
charges every access the capacity-dependent SRAM tag latency and otherwise
follows the same footprint-prediction flow as Unison Cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.replacement import LruPolicy
from repro.config.cache_configs import (
    FootprintCacheConfig,
    footprint_tag_array_for_capacity,
)
from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.footprint import FootprintPredictor
from repro.predictors.singleton import SingletonTable
from repro.sim.registry import DesignBuildContext, register_design
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess
from repro.utils.bitvector import BitVector


@dataclass
class _PageFrame:
    """One way of one set of the Footprint Cache."""

    valid: bool = False
    page_number: int = -1
    vbits: BitVector = field(default_factory=lambda: BitVector(32))
    dbits: BitVector = field(default_factory=lambda: BitVector(32))
    demanded: BitVector = field(default_factory=lambda: BitVector(32))
    predicted: BitVector = field(default_factory=lambda: BitVector(32))
    trigger_pc: int = 0
    trigger_offset: int = 0
    #: Whether the fetched footprint came from a trained history entry.
    predicted_from_history: bool = False


class FootprintCache(DramCacheModel):
    """Page-based DRAM cache with SRAM tags and footprint prediction."""

    design_name = "footprint"

    #: Warm state beyond the base's: the per-set frames, LRU state, and the
    #: footprint/singleton predictor tables.
    _STATE_ATTRS = ("_frames", "_lru", "footprint_predictor",
                    "singleton_table")

    def __init__(self, config: Optional[FootprintCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 tag_latency_cycles: Optional[int] = None,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or FootprintCacheConfig()
        self.config.validate()
        super().__init__(self.config.capacity_bytes, stacked, memory,
                         interarrival_cycles=interarrival_cycles)

        #: SRAM tag lookup latency; defaults to the Table IV value for the
        #: configured capacity but can be overridden (the experiment harness
        #: overrides it when simulating a scaled-down cache so the latency
        #: still reflects the *paper's* capacity).
        self.tag_latency_cycles = (
            tag_latency_cycles
            if tag_latency_cycles is not None
            else self.config.tag_array.lookup_latency_cycles
        )

        blocks = self.config.blocks_per_page
        self.footprint_predictor = FootprintPredictor(
            blocks_per_page=blocks,
            num_entries=self.config.footprint_table_entries,
        )
        self.singleton_table = SingletonTable(
            num_entries=self.config.singleton_table_entries,
            blocks_per_page=blocks,
        )

        self.num_sets = self.config.num_sets
        self.associativity = min(self.config.associativity, max(1, self.config.num_pages))
        self._frames: List[List[_PageFrame]] = [
            [self._new_frame() for _ in range(self.associativity)]
            for _ in range(self.num_sets)
        ]
        self._lru: List[LruPolicy] = [
            LruPolicy(self.associativity) for _ in range(self.num_sets)
        ]

        self._pages_per_row = max(1, self.config.row_buffer_size // self.config.page_size)

    # ------------------------------------------------------------------ #
    def _new_frame(self) -> _PageFrame:
        blocks = self.config.blocks_per_page
        return _PageFrame(
            vbits=BitVector(blocks),
            dbits=BitVector(blocks),
            demanded=BitVector(blocks),
            predicted=BitVector(blocks),
        )

    def _locate(self, block_address: int) -> "tuple[int, int, int]":
        """(page number, set index, block offset) for a block address."""
        page = block_address // self.config.blocks_per_page
        offset = block_address % self.config.blocks_per_page
        return page, page % self.num_sets, offset

    def _find_way(self, set_index: int, page: int) -> int:
        for way, frame in enumerate(self._frames[set_index]):
            if frame.valid and frame.page_number == page:
                return way
        return -1

    def _row_of(self, set_index: int, way: int) -> "tuple[int, int]":
        """(DRAM row, byte offset of the page within the row) for a frame."""
        frame_id = set_index * self.associativity + way
        row = frame_id // self._pages_per_row
        slot = frame_id % self._pages_per_row
        return row, slot * self.config.page_size

    # ------------------------------------------------------------------ #
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Service one L2-miss request."""
        page, set_index, offset = self._locate(request.block_address)
        way = self._find_way(set_index, page)
        if way >= 0:
            return self._access_resident_page(request, page, set_index, way, offset)
        return self._trigger_miss(request, page, set_index, offset)

    # ------------------------------------------------------------------ #
    def _access_resident_page(self, request: MemoryAccess, page: int,
                              set_index: int, way: int,
                              offset: int) -> DramCacheAccessResult:
        frame = self._frames[set_index][way]
        frame.demanded.set(offset)
        if request.is_write:
            frame.dbits.set(offset)
        self._lru[set_index].on_access(way)

        row, page_base = self._row_of(set_index, way)
        if frame.vbits.get(offset):
            # Hit: SRAM tag lookup, then the data block read from stacked DRAM.
            data = self.stacked.read(
                row, page_base + offset * self.config.block_size,
                self.config.block_size, self._now,
            )
            latency = self.tag_latency_cycles + data.latency_cpu_cycles
            if request.is_write:
                self.stacked.write(
                    row, page_base + offset * self.config.block_size,
                    self.config.block_size, self._now,
                )
            self.cache_stats.record_hit(latency, request.is_write)
            return DramCacheAccessResult(hit=True, latency_cycles=latency)

        # Footprint underprediction: fetch just the missing block.
        self.cache_stats.underprediction_misses += 1
        offchip = self.memory.read_block(request.block_address, self._now)
        self.cache_stats.offchip_demand_blocks += 1
        frame.vbits.set(offset)
        self.stacked.write(
            row, page_base + offset * self.config.block_size,
            self.config.block_size, self._now,
        )
        latency = self.tag_latency_cycles + offchip
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False, latency_cycles=latency, offchip_blocks_fetched=1
        )

    # ------------------------------------------------------------------ #
    def _trigger_miss(self, request: MemoryAccess, page: int, set_index: int,
                      offset: int) -> DramCacheAccessResult:
        correction = self.singleton_table.record_access(page, offset)
        if correction is not None:
            trigger_pc, trigger_offset, observed = correction
            self.footprint_predictor.update(trigger_pc, trigger_offset, observed)

        prediction = self.footprint_predictor.predict(request.pc, offset)

        if prediction.is_singleton and prediction.from_history:
            offchip = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
            self.cache_stats.singleton_bypasses += 1
            if correction is None:
                self.singleton_table.insert(page, request.pc, offset)
            latency = self.tag_latency_cycles + offchip
            self.cache_stats.record_miss(latency, request.is_write)
            return DramCacheAccessResult(
                hit=False, latency_cycles=latency, offchip_blocks_fetched=1
            )

        victim_way = self._lru[set_index].victim(
            [frame.valid for frame in self._frames[set_index]]
        )
        written_back = self._evict(set_index, victim_way)

        footprint = prediction.footprint.copy()
        footprint.set(offset)
        fetch_offsets = footprint.indices()
        base_block = page * self.config.blocks_per_page
        offchip = self.memory.fetch_blocks(
            [base_block + o for o in fetch_offsets], self._now
        )
        self.cache_stats.offchip_demand_blocks += 1
        self.cache_stats.offchip_prefetch_blocks += len(fetch_offsets) - 1

        frame = self._frames[set_index][victim_way]
        frame.valid = True
        frame.page_number = page
        frame.vbits = footprint.copy()
        frame.dbits = BitVector(self.config.blocks_per_page)
        frame.demanded = BitVector.from_indices(self.config.blocks_per_page, [offset])
        frame.predicted = footprint.copy()
        frame.predicted_from_history = prediction.from_history
        frame.trigger_pc = request.pc
        frame.trigger_offset = offset
        if request.is_write:
            frame.dbits.set(offset)
        self._lru[set_index].on_fill(victim_way)
        self.cache_stats.pages_allocated += 1

        row, page_base = self._row_of(set_index, victim_way)
        self.stacked.fill_blocks(
            row,
            [page_base + o * self.config.block_size for o in fetch_offsets],
            self._now,
        )

        latency = self.tag_latency_cycles + offchip
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False, latency_cycles=latency,
            offchip_blocks_fetched=len(fetch_offsets),
            offchip_blocks_written=written_back,
        )

    # ------------------------------------------------------------------ #
    def _evict(self, set_index: int, way: int) -> int:
        frame = self._frames[set_index][way]
        if not frame.valid:
            return 0
        self.cache_stats.pages_evicted += 1
        actual = frame.demanded.copy()
        if not actual.any():
            actual.set(frame.trigger_offset)
        self.footprint_predictor.update(frame.trigger_pc, frame.trigger_offset, actual)
        self.footprint_predictor.record_outcome(
            frame.predicted, actual, from_history=frame.predicted_from_history
        )

        dirty_offsets = frame.dbits.intersection(frame.vbits).indices()
        if dirty_offsets:
            base_block = frame.page_number * self.config.blocks_per_page
            self.memory.write_blocks(
                [base_block + o for o in dirty_offsets], self._now
            )
            self.cache_stats.offchip_writeback_blocks += len(dirty_offsets)

        frame.valid = False
        frame.page_number = -1
        return len(dirty_offsets)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Reset cache and predictor statistics; contents and training persist."""
        super().reset_stats()
        self.footprint_predictor.reset_stats()

    @property
    def footprint_accuracy(self) -> float:
        """Measured footprint-predictor accuracy (Table V)."""
        return self.footprint_predictor.accuracy_ratio

    @property
    def footprint_overfetch(self) -> float:
        """Measured footprint overfetch ratio (Table V)."""
        return self.footprint_predictor.overfetch_ratio

    def extra_metrics(self) -> Dict[str, float]:
        """Footprint-predictor metrics reported in Table V."""
        return {
            "footprint_accuracy": self.footprint_accuracy,
            "footprint_overfetch": self.footprint_overfetch,
        }

    def stats(self) -> StatGroup:
        """Design, predictor and device statistics."""
        group = super().stats()
        group.merge_child(self.footprint_predictor.stats())
        group.merge_child(self.singleton_table.stats())
        return group


@register_design("footprint",
                 description="2KB pages with footprint prediction and SRAM "
                             "tags whose latency grows with capacity "
                             "(Jevdjic et al., ISCA'13)")
def _build_footprint(context: DesignBuildContext) -> FootprintCache:
    # The SRAM tag latency is dictated by the *paper* capacity (Table IV).
    tag_latency = footprint_tag_array_for_capacity(
        context.paper_capacity_bytes
    ).lookup_latency_cycles
    return FootprintCache(
        FootprintCacheConfig(capacity=context.scaled_capacity_bytes),
        tag_latency_cycles=tag_latency,
    )
