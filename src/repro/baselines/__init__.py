"""Baseline DRAM cache designs the paper compares against.

* :class:`repro.baselines.alloy.AlloyCache` -- the state-of-the-art
  block-based design (Qureshi & Loh, MICRO 2012): direct-mapped tag-and-data
  units streamed in one access, plus a per-core miss predictor.
* :class:`repro.baselines.footprint.FootprintCache` -- the state-of-the-art
  page-based design (Jevdjic et al., ISCA 2013): SRAM tags, 2 KB pages,
  footprint prediction; tag latency grows with capacity (Table IV).
* :class:`repro.baselines.loh_hill.LohHillCache` -- the earlier tags-in-DRAM
  block-based design with a MissMap (Loh & Hill, MICRO 2011), provided as an
  extension: Section II-A uses it to motivate Alloy Cache.
* :class:`repro.baselines.ideal.IdealCache` -- the latency-optimized reference
  point used in Figures 7 and 8: 100% hit rate, zero tag overhead.
* :class:`repro.baselines.no_cache.NoDramCache` -- a system without any
  stacked-DRAM cache; every request goes off-chip.
"""

from repro.baselines.alloy import AlloyCache
from repro.baselines.footprint import FootprintCache
from repro.baselines.ideal import IdealCache
from repro.baselines.loh_hill import LohHillCache
from repro.baselines.no_cache import NoDramCache

__all__ = ["AlloyCache", "FootprintCache", "IdealCache", "LohHillCache",
           "NoDramCache"]
