"""A system without a die-stacked DRAM cache.

Useful as a lower-bound reference and for normalizing speedups: every L2 miss
goes straight to off-chip memory, and off-chip traffic equals one block per
access (the baseline the paper's bandwidth discussion compares against).
"""

from __future__ import annotations

from typing import Optional

from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.sim.registry import DesignBuildContext, register_design
from repro.trace.record import MemoryAccess


class NoDramCache(DramCacheModel):
    """Pass-through design: every request misses to off-chip memory."""

    design_name = "no_cache"

    #: No design-local warm state: the base's declaration (statistics and
    #: the DRAM device timing) covers everything mutable here.
    _STATE_ATTRS: "tuple[str, ...]" = ()

    def __init__(self, memory: Optional[MainMemory] = None,
                 interarrival_cycles: int = 6) -> None:
        super().__init__(capacity_bytes=1, stacked=StackedDram(), memory=memory,
                         interarrival_cycles=interarrival_cycles)

    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Every access is an off-chip memory access."""
        if request.is_write:
            latency = self.memory.write_block(request.block_address, self._now)
            self.cache_stats.offchip_writeback_blocks += 1
        else:
            latency = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False, latency_cycles=latency,
            offchip_blocks_fetched=0 if request.is_write else 1,
            offchip_blocks_written=1 if request.is_write else 0,
        )


@register_design("no_cache",
                 description="no stacked-DRAM cache; every request goes "
                             "off-chip (the speedup baseline)")
def _build_no_cache(context: DesignBuildContext) -> NoDramCache:
    return NoDramCache()
