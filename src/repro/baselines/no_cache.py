"""A system without a die-stacked DRAM cache.

Useful as a lower-bound reference and for normalizing speedups: every L2 miss
goes straight to off-chip memory, and off-chip traffic equals one block per
access (the baseline the paper's bandwidth discussion compares against).

The class is a named composition on the
:class:`repro.dramcache.composed.ComposedDramCache` engine: the no-cache tag
organization, which forwards reads and writes straight off chip.  The
canonical ``no_cache`` design name is registered as a spec in
:mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.dramcache.components import NoCacheTags
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext


class NoDramCache(ComposedDramCache):
    """Pass-through design: every request misses to off-chip memory."""

    design_name = "no_cache"

    def __init__(self, memory: Optional[MainMemory] = None,
                 interarrival_cycles: int = 6) -> None:
        super().__init__(
            tags=NoCacheTags(),
            stacked=StackedDram(),
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "NoDramCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("no-cache",), hit_predictor=("none",),
                           fetch=("demand",), writeback=("none",))
        take_params(spec.tags, "tag organization", ())
        return cls()
