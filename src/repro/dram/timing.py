"""DRAM timing parameters.

All values are in DRAM command-bus cycles.  The defaults are the stacked-DRAM
parameters of the paper's Table III; :meth:`DramTimings.from_channel_config`
builds timings from any :class:`repro.config.system.DramChannelConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import DramChannelConfig


@dataclass(frozen=True)
class DramTimings:
    """Timing constraints of a DRAM device (in DRAM bus cycles)."""

    t_cas: int = 11
    t_rcd: int = 11
    t_rp: int = 11
    t_ras: int = 28
    t_rc: int = 39
    t_wr: int = 12
    t_wtr: int = 6
    t_rtp: int = 6
    t_rrd: int = 5
    t_faw: int = 24
    burst_length: int = 8
    #: Data bus width in bits; with DDR signalling a burst of length 8
    #: transfers ``burst_length * bus_width_bits / 8`` bytes.
    bus_width_bits: int = 128
    frequency_mhz: float = 1600.0

    def __post_init__(self) -> None:
        for name in ("t_cas", "t_rcd", "t_rp", "t_ras", "t_rc", "t_wr",
                     "t_wtr", "t_rtp", "t_rrd", "t_faw", "burst_length"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.bus_width_bits % 8:
            raise ValueError("bus_width_bits must be a multiple of 8")
        if self.t_rc < self.t_ras:
            raise ValueError("t_rc must be >= t_ras")

    @classmethod
    def from_channel_config(cls, config: DramChannelConfig) -> "DramTimings":
        """Build timings from a :class:`DramChannelConfig`."""
        return cls(
            t_cas=config.t_cas,
            t_rcd=config.t_rcd,
            t_rp=config.t_rp,
            t_ras=config.t_ras,
            t_rc=config.t_rc,
            t_wr=config.t_wr,
            t_wtr=config.t_wtr,
            t_rtp=config.t_rtp,
            t_rrd=config.t_rrd,
            t_faw=config.t_faw,
            burst_length=config.burst_length,
            bus_width_bits=config.bus_width_bits,
            frequency_mhz=config.frequency_mhz,
        )

    @property
    def bytes_per_burst_cycle(self) -> int:
        """Bytes transferred per bus cycle (double data rate)."""
        return self.bus_width_bits // 4

    @property
    def burst_bytes(self) -> int:
        """Bytes transferred by one full burst (``burst_length`` beats)."""
        return self.burst_length * self.bus_width_bits // 8

    def data_cycles(self, num_bytes: int) -> int:
        """Bus cycles occupied transferring ``num_bytes`` (rounded up, min 1)."""
        if num_bytes <= 0:
            return 0
        return max(1, -(-num_bytes // self.bytes_per_burst_cycle))

    def cpu_cycles(self, dram_cycles: float, cpu_frequency_ghz: float = 3.0) -> int:
        """Convert DRAM bus cycles to CPU cycles (rounded up)."""
        ratio = cpu_frequency_ghz * 1000.0 / self.frequency_mhz
        return int(-(-dram_cycles * ratio // 1))
