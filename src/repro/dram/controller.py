"""DRAM controller front-end.

:class:`DramController` is the interface the DRAM cache models and the main
memory use: it maps addresses to channels/banks/rows, performs accesses
against the timing model, and reports latencies in **CPU cycles** so callers
never handle DRAM-bus cycles directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config.system import DramChannelConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.channel import Channel
from repro.dram.timing import DramTimings
from repro.stats.counters import StatGroup


@dataclass(frozen=True)
class AccessResult:
    """Latency and row-buffer outcome of one DRAM access."""

    latency_cpu_cycles: int
    row_hit: bool
    activated: bool


class DramController:
    """Open-page controller over one or more channels.

    The controller keeps a coarse notion of time: callers pass the CPU cycle
    at which a request arrives, and receive its latency.  Internally the
    per-bank and per-bus constraints are tracked in DRAM bus cycles.

    Parameters
    ----------
    config:
        Channel organization and timing parameters.
    cpu_frequency_ghz:
        CPU frequency used to convert latencies to CPU cycles.
    """

    def __init__(self, config: DramChannelConfig, cpu_frequency_ghz: float = 3.0) -> None:
        config.validate()
        self.config = config
        self.cpu_frequency_ghz = cpu_frequency_ghz
        self.timings = DramTimings.from_channel_config(config)
        self.channels: List[Channel] = [
            Channel(self.timings, config.banks_per_rank)
            for _ in range(config.num_channels)
        ]
        self.mapping = AddressMapping(
            num_channels=config.num_channels,
            banks_per_channel=config.banks_per_rank,
            row_bytes=config.row_buffer_bytes,
        )
        self._cpu_per_dram = (cpu_frequency_ghz * 1000.0) / config.frequency_mhz
        self.total_requests = 0

    # ------------------------------------------------------------------ #
    def _to_dram_cycles(self, cpu_cycle: int) -> int:
        return int(cpu_cycle / self._cpu_per_dram)

    def _to_cpu_cycles(self, dram_cycles: float) -> int:
        return int(-(-dram_cycles * self._cpu_per_dram // 1))

    # ------------------------------------------------------------------ #
    def access(self, address: int, num_bytes: int, now_cpu: int = 0,
               is_write: bool = False) -> AccessResult:
        """Access ``num_bytes`` starting at ``address``.

        The transfer is assumed to stay within one DRAM row (the DRAM cache
        models guarantee this by construction); latency is returned in CPU
        cycles from request arrival to last data beat.
        """
        if num_bytes <= 0:
            raise ValueError("num_bytes must be positive")
        coords = self.mapping.decompose(address)
        channel = self.channels[coords.channel]
        now_dram = self._to_dram_cycles(now_cpu)
        result = channel.access(
            coords.bank, coords.row, num_bytes, now_dram, is_write=is_write
        )
        self.total_requests += 1
        latency_dram = result.completion_cycle - now_dram
        return AccessResult(
            latency_cpu_cycles=self._to_cpu_cycles(latency_dram),
            row_hit=result.row_hit,
            activated=result.activated,
        )

    def row_of(self, address: int) -> int:
        """Global row identifier for ``address`` (used to detect same-row accesses)."""
        coords = self.mapping.decompose(address)
        return ((coords.row * self.mapping.banks_per_channel) + coords.bank) \
            * self.mapping.num_channels + coords.channel

    # ------------------------------------------------------------------ #
    @property
    def total_activations(self) -> int:
        """Row activations across all channels (energy proxy, Section V-D)."""
        return sum(channel.total_activations for channel in self.channels)

    @property
    def total_bytes_transferred(self) -> int:
        """Bytes moved over all data buses."""
        return sum(channel.bytes_transferred for channel in self.channels)

    def stats(self) -> StatGroup:
        """Controller-level statistics."""
        group = StatGroup(self.config.name)
        group.set("requests", self.total_requests)
        group.set("activations", self.total_activations)
        group.set("bytes_transferred", self.total_bytes_transferred)
        reads = sum(c.reads for c in self.channels)
        writes = sum(c.writes for c in self.channels)
        group.set("reads", reads)
        group.set("writes", writes)
        return group
