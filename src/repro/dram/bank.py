"""Per-bank row-buffer state machine.

A :class:`Bank` tracks which row (if any) is open in its row buffer and the
earliest cycle at which the next activate / column access / precharge may be
issued, honouring tRCD, tCAS, tRAS, tRP, tRC, tWR and tRTP.  The controller
asks a bank to perform a column access to a given row at a given time and
receives back the cycle at which the data transfer begins, plus whether the
access was a row-buffer hit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.timing import DramTimings


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"          # no row open (precharged)
    ACTIVE = "active"      # a row is open in the row buffer


@dataclass
class ColumnAccessResult:
    """Outcome of a column access issued to a bank."""

    #: Cycle at which the first data beat appears on the bus.
    data_start_cycle: int
    #: True if the access hit in the open row buffer.
    row_hit: bool
    #: True if another row had to be closed first (row-buffer conflict).
    row_conflict: bool


class Bank:
    """One DRAM bank with an open-page policy."""

    def __init__(self, timings: DramTimings) -> None:
        self.timings = timings
        self.state = BankState.IDLE
        self.open_row: int = -1
        # Earliest cycles at which each command type may next be issued.
        self._next_activate = 0
        self._next_column = 0
        self._next_precharge = 0
        # Statistics
        self.activations = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    # ------------------------------------------------------------------ #
    def _issue_precharge(self, now: int) -> int:
        """Close the open row; returns the cycle the bank becomes IDLE."""
        issue = max(now, self._next_precharge)
        done = issue + self.timings.t_rp
        self.state = BankState.IDLE
        self.open_row = -1
        self._next_activate = max(self._next_activate, done)
        return done

    def _issue_activate(self, row: int, now: int) -> int:
        """Open ``row``; returns the cycle at which column commands may issue."""
        t = self.timings
        issue = max(now, self._next_activate)
        self.state = BankState.ACTIVE
        self.open_row = row
        self.activations += 1
        # The next activate to this bank must respect tRC; precharge must
        # respect tRAS.
        self._next_activate = issue + t.t_rc
        self._next_precharge = issue + t.t_ras
        column_ready = issue + t.t_rcd
        self._next_column = max(self._next_column, column_ready)
        return column_ready

    # ------------------------------------------------------------------ #
    def access(self, row: int, now: int, is_write: bool = False) -> ColumnAccessResult:
        """Perform a column access to ``row`` at time ``now``.

        Follows the open-page policy: a row-buffer hit issues the column
        command immediately; a miss activates the row (precharging first if a
        different row is open).
        """
        if row < 0:
            raise ValueError("row must be non-negative")
        t = self.timings
        row_hit = self.state is BankState.ACTIVE and self.open_row == row
        row_conflict = self.state is BankState.ACTIVE and self.open_row != row

        if row_hit:
            self.row_hits += 1
            column_issue = max(now, self._next_column)
        else:
            if row_conflict:
                self.row_conflicts += 1
                ready = self._issue_precharge(now)
            else:
                self.row_misses += 1
                ready = max(now, self._next_activate)
            column_issue = self._issue_activate(row, ready)
            column_issue = max(column_issue, self._next_column, now)

        data_start = column_issue + (t.t_cas if not is_write else 0)
        if is_write:
            # Write recovery constrains the next precharge and column command.
            self._next_precharge = max(
                self._next_precharge, column_issue + t.t_wr
            )
            self._next_column = max(self._next_column, column_issue + t.t_wtr)
        else:
            self._next_precharge = max(
                self._next_precharge, column_issue + t.t_rtp
            )
            self._next_column = max(self._next_column, column_issue + 1)

        return ColumnAccessResult(
            data_start_cycle=data_start,
            row_hit=row_hit,
            row_conflict=row_conflict,
        )

    def is_row_open(self, row: int) -> bool:
        """True if ``row`` is currently open in the row buffer."""
        return self.state is BankState.ACTIVE and self.open_row == row
