"""DRAM device and controller timing model.

A compact, DRAMSim2-inspired timing model of DDR-style devices: per-bank row
buffer state machines honouring the Table III timing constraints (tRCD, tCAS,
tRP, tRAS, tRC, tWR, tWTR, tRTP, tRRD, tFAW), a shared data bus per channel,
and an open-page controller with channel/bank interleaving.

It is used both for the off-chip DDR3-1600 channel and for the four-channel
die-stacked DRAM; the DRAM cache models issue logical operations (read a tag
burst, read a block, fill a footprint) and receive latencies in CPU cycles.
"""

from repro.dram.timing import DramTimings
from repro.dram.bank import Bank, BankState
from repro.dram.address_mapping import AddressMapping, DramCoordinates
from repro.dram.channel import Channel
from repro.dram.controller import AccessResult, DramController

__all__ = [
    "DramTimings",
    "Bank",
    "BankState",
    "AddressMapping",
    "DramCoordinates",
    "Channel",
    "AccessResult",
    "DramController",
]
