"""A DRAM channel: a set of banks sharing command and data buses.

The channel enforces the inter-bank constraints that the per-bank state
machines cannot see: the tRRD minimum spacing between activates, the tFAW
four-activate window, and the occupancy of the shared data bus.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.dram.bank import Bank
from repro.dram.timing import DramTimings


class Channel:
    """One DRAM channel with ``num_banks`` banks and a shared data bus."""

    def __init__(self, timings: DramTimings, num_banks: int) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.timings = timings
        self.banks: List[Bank] = [Bank(timings) for _ in range(num_banks)]
        self._data_bus_free = 0
        self._recent_activates: Deque[int] = deque(maxlen=4)
        self._last_activate = -(10 ** 9)
        # Statistics
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------ #
    def _activate_constraint(self, now: int) -> int:
        """Earliest cycle a new activate may issue given tRRD / tFAW."""
        earliest = max(now, self._last_activate + self.timings.t_rrd)
        if len(self._recent_activates) == self._recent_activates.maxlen:
            earliest = max(earliest, self._recent_activates[0] + self.timings.t_faw)
        return earliest

    def _record_activate(self, cycle: int) -> None:
        self._recent_activates.append(cycle)
        self._last_activate = cycle

    # ------------------------------------------------------------------ #
    def access(self, bank_index: int, row: int, num_bytes: int, now: int,
               is_write: bool = False) -> "ChannelAccessResult":
        """Perform one column access transferring ``num_bytes``.

        Returns the completion cycle of the data transfer along with
        row-buffer outcome information.
        """
        if not 0 <= bank_index < len(self.banks):
            raise IndexError(f"bank index {bank_index} out of range")
        bank = self.banks[bank_index]

        will_activate = not bank.is_row_open(row)
        issue_time = now
        if will_activate:
            issue_time = self._activate_constraint(now)

        result = bank.access(row, issue_time, is_write=is_write)
        if will_activate:
            self._record_activate(issue_time)

        transfer_cycles = self.timings.data_cycles(num_bytes)
        data_start = max(result.data_start_cycle, self._data_bus_free)
        data_end = data_start + transfer_cycles
        self._data_bus_free = data_end

        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_transferred += max(0, num_bytes)

        return ChannelAccessResult(
            completion_cycle=data_end,
            data_start_cycle=data_start,
            row_hit=result.row_hit,
            row_conflict=result.row_conflict,
            activated=will_activate,
        )

    @property
    def total_activations(self) -> int:
        """Row activations summed over all banks."""
        return sum(bank.activations for bank in self.banks)


class ChannelAccessResult:
    """Outcome of a channel access."""

    __slots__ = ("completion_cycle", "data_start_cycle", "row_hit",
                 "row_conflict", "activated")

    def __init__(self, completion_cycle: int, data_start_cycle: int,
                 row_hit: bool, row_conflict: bool, activated: bool) -> None:
        self.completion_cycle = completion_cycle
        self.data_start_cycle = data_start_cycle
        self.row_hit = row_hit
        self.row_conflict = row_conflict
        self.activated = activated
