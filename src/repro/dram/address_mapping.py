"""Address decomposition into DRAM coordinates.

The controller interleaves consecutive DRAM rows across channels and banks
(row:bank:channel order below the row-buffer-sized stripe), which maximizes
bank-level parallelism for the footprint-granularity transfers the DRAM cache
performs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramCoordinates:
    """Location of a byte address within the DRAM organization."""

    channel: int
    bank: int
    row: int
    column_byte: int


@dataclass(frozen=True)
class AddressMapping:
    """Maps byte addresses to (channel, bank, row, column).

    Parameters
    ----------
    num_channels:
        Number of independent channels.
    banks_per_channel:
        Banks per channel (rank detail is folded into the bank count).
    row_bytes:
        Row-buffer size in bytes.
    """

    num_channels: int
    banks_per_channel: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.num_channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("channel and bank counts must be positive")
        if self.row_bytes <= 0:
            raise ValueError("row_bytes must be positive")

    def decompose(self, address: int) -> DramCoordinates:
        """Decompose a byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        column = address % self.row_bytes
        stripe = address // self.row_bytes
        channel = stripe % self.num_channels
        stripe //= self.num_channels
        bank = stripe % self.banks_per_channel
        row = stripe // self.banks_per_channel
        return DramCoordinates(channel=channel, bank=bank, row=row, column_byte=column)

    def row_base_address(self, coords: DramCoordinates) -> int:
        """Inverse of :meth:`decompose` for the start of a row."""
        stripe = (coords.row * self.banks_per_channel + coords.bank) * self.num_channels
        stripe += coords.channel
        return stripe * self.row_bytes
