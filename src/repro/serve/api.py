"""Socket-free request routing for ``repro serve``.

:func:`handle_request` maps ``(path, query)`` to a :class:`Response`
without touching the network, so handler-level tests exercise every
endpoint by calling it directly; ``server.py`` is a thin
``http.server`` shim over it.

Endpoints::

    /                         auto-refreshing HTML dashboard
    /api/health               store paths + availability
    /api/designs              design catalog with per-role components
    /api/sweeps               archive listing merged with job counts
    /api/sweeps/<token>       one sweep + archived result records
    /api/runs?limit=&sweep=&kind=
    /api/runs/<ref>           prefix-resolved run or sweep summary
    /api/queue?token=&jobs=   job states, heartbeats, drain ETA
    /api/figures              figure catalog
    /api/figures/fig6         miss-ratio SVG (?token= selects the sweep)
    /api/figures/fig7         speedup SVG
    /api/figures/compare?a=<ref>&b=<ref>   per-phase wall-clock SVG
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serve.dashboard import render_dashboard
from repro.serve.figures import compare_svg, fig6_svg, fig7_svg
from repro.serve.readmodel import ReadModel

JSON_TYPE = "application/json; charset=utf-8"
SVG_TYPE = "image/svg+xml; charset=utf-8"
HTML_TYPE = "text/html; charset=utf-8"

Query = Dict[str, List[str]]


@dataclass(frozen=True)
class Response:
    status: int
    content_type: str
    body: bytes


def json_response(payload: object, status: int = 200) -> Response:
    body = json.dumps(payload, indent=2, sort_keys=True,
                      default=str).encode("utf-8")
    return Response(status, JSON_TYPE, body)


def error_response(status: int, message: str) -> Response:
    return json_response({"error": message}, status=status)


def svg_response(document: str) -> Response:
    return Response(200, SVG_TYPE, document.encode("utf-8"))


def _param(query: Query, name: str, default: Optional[str] = None
           ) -> Optional[str]:
    values = query.get(name) or []
    return values[0] if values else default


def _int_param(query: Query, name: str, default: int) -> int:
    raw = _param(query, name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"query parameter {name}={raw!r} is not an integer")


FIGURES = {
    "fig6": "miss ratio per design/workload with 95% CI error bars",
    "fig7": "speedup vs no cache per design/workload with 95% CI error bars",
    "compare": "per-phase wall-clock of two run/sweep refs (?a=&b=)",
}


def handle_request(model: ReadModel, path: str,
                   query: Optional[Query] = None) -> Response:
    """Route one GET.  Never raises: store errors become JSON errors."""
    query = query or {}
    path = path.rstrip("/") or "/"
    try:
        return _route(model, path, query)
    except (KeyError, FileNotFoundError) as error:
        return error_response(404, _message(error))
    except ValueError as error:
        return error_response(400, _message(error))


def _message(error: BaseException) -> str:
    text = str(error)
    # KeyError reprs its argument; unwrap the quoted message.
    if isinstance(error, KeyError) and error.args:
        text = str(error.args[0])
    return text or error.__class__.__name__


def _route(model: ReadModel, path: str, query: Query) -> Response:
    if path in ("/", "/index.html", "/dashboard"):
        return Response(200, HTML_TYPE, render_dashboard().encode("utf-8"))
    if path == "/api/health":
        return json_response(model.health())
    if path == "/api/designs":
        return json_response(model.designs())
    if path == "/api/sweeps":
        return json_response(model.sweeps())
    if path.startswith("/api/sweeps/"):
        token = path[len("/api/sweeps/"):]
        include = _param(query, "records", "1") not in ("0", "false", "no")
        return json_response(model.sweep(token, include_records=include))
    if path == "/api/runs":
        return json_response(model.runs(
            limit=_int_param(query, "limit", 20),
            sweep=_param(query, "sweep"),
            kind=_param(query, "kind"),
        ))
    if path.startswith("/api/runs/"):
        return json_response(model.run_detail(path[len("/api/runs/"):]))
    if path == "/api/queue":
        include_jobs = _param(query, "jobs", "1") not in ("0", "false", "no")
        return json_response(model.queue(token=_param(query, "token"),
                                         include_jobs=include_jobs))
    if path == "/api/figures":
        return json_response({"figures": [
            {"name": name, "description": text, "url": f"/api/figures/{name}"}
            for name, text in sorted(FIGURES.items())
        ]})
    if path.startswith("/api/figures/"):
        return _figure(model, path[len("/api/figures/"):], query)
    return error_response(404, f"unknown path {path!r}")


def _figure(model: ReadModel, name: str, query: Query) -> Response:
    if name in ("fig6", "fig7"):
        meta, resultset = model.figure_source(_param(query, "token"))
        if not resultset:
            return error_response(404,
                                  f"sweep {meta['token']} has no records yet")
        subtitle = f"sweep {str(meta['token'])[:12]}"
        render = fig6_svg if name == "fig6" else fig7_svg
        return svg_response(render(resultset, subtitle=subtitle))
    if name == "compare":
        ref_a, ref_b = _param(query, "a"), _param(query, "b")
        if not ref_a or not ref_b:
            raise ValueError("compare needs ?a=<ref>&b=<ref>")
        sides = []
        for ref in (ref_a, ref_b):
            detail = model.run_detail(ref)
            sides.append((f"{detail['scope']} {ref}", detail["summary"]))
        return svg_response(compare_svg(sides))
    raise KeyError(f"unknown figure {name!r}; available: "
                   + ", ".join(sorted(FIGURES)))


__all__ = [
    "FIGURES",
    "Response",
    "error_response",
    "handle_request",
    "json_response",
    "svg_response",
]
