"""Read-side data assembly behind ``repro serve``.

One :class:`ReadModel` resolves the three stores -- the job store and
result archive under the queue directory, the run ledger (plus JSONL
manifests) under the telemetry directory -- and turns their rows into
JSON-ready dicts.  Three contracts hold everywhere:

* **Telemetry-off still reads.**  Directory resolution mirrors
  :func:`repro.obs.core.query_root`: the ``REPRO_TELEMETRY`` *enable*
  switch is ignored on the read side, so a server pointed at stores
  written by an instrumented run works even when the environment no
  longer enables telemetry.
* **No lock spans a render.**  Every method opens short-lived
  connections -- read-only (``mode=ro``) when the database allows it --
  fetches all rows, and closes them before any SVG or HTML is built.
* **Missing stores degrade, they don't crash.**  Listing endpoints
  report ``available: false`` with a reason; only lookups of a specific
  record raise (:class:`LookupError` -> HTTP 404 upstream).
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.core import LEDGER_FILENAME, query_root
from repro.obs.ledger import (
    HEARTBEAT_STALE_SECONDS,
    RunLedger,
    summarize,
)
from repro.obs.manifest import find_manifest, read_manifest
from repro.queue.archive import ResultArchive
from repro.queue.jobstore import JobStore
from repro.queue.service import (
    ARCHIVE_FILENAME,
    JOB_STORE_FILENAME,
    default_queue_dir,
)
from repro.sim.resultset import ResultSet

PathLike = Union[str, Path]

#: Directory names used when ``--root`` points at a trace-store-shaped
#: tree (the layout ``SweepService`` and the telemetry writer produce).
QUEUE_DIRNAME = "queue"
TELEMETRY_DIRNAME = "telemetry"


def open_readonly(cls, path: PathLike):
    """Open a store read-only, falling back to a writable connection.

    Read-only opens of a WAL database raise ``SQLITE_CANTOPEN`` when the
    companion ``-shm`` file is missing (a cleanly shut down writer removes
    it); the writable fallback recreates it.  Either way the caller
    fetches rows and closes immediately, so no lock outlives the query.
    """
    try:
        return cls(path, readonly=True)
    except sqlite3.OperationalError:
        return cls(path)


class ReadModel:
    """Plain-dict views over the job store, archive, and run ledger."""

    def __init__(self, queue_dir: Optional[PathLike] = None,
                 telemetry_dir: Optional[PathLike] = None) -> None:
        self.queue_dir = (Path(queue_dir) if queue_dir is not None
                          else default_queue_dir())
        if telemetry_dir is not None:
            self.telemetry_dir: Optional[Path] = Path(telemetry_dir)
        else:
            self.telemetry_dir = query_root()

    @classmethod
    def at_root(cls, root: PathLike) -> "ReadModel":
        """A model over ``<root>/queue`` and ``<root>/telemetry``."""
        root = Path(root)
        return cls(queue_dir=root / QUEUE_DIRNAME,
                   telemetry_dir=root / TELEMETRY_DIRNAME)

    # ------------------------------------------------------------------ #
    # Store handles
    # ------------------------------------------------------------------ #
    @property
    def jobstore_path(self) -> Path:
        return self.queue_dir / JOB_STORE_FILENAME

    @property
    def archive_path(self) -> Path:
        return self.queue_dir / ARCHIVE_FILENAME

    @property
    def ledger_path(self) -> Optional[Path]:
        if self.telemetry_dir is None:
            return None
        return self.telemetry_dir / LEDGER_FILENAME

    def _jobstore(self) -> Optional[JobStore]:
        if not self.jobstore_path.is_file():
            return None
        return open_readonly(JobStore, self.jobstore_path)

    def _archive(self) -> Optional[ResultArchive]:
        if not self.archive_path.is_file():
            return None
        return open_readonly(ResultArchive, self.archive_path)

    def _ledger(self) -> Optional[RunLedger]:
        path = self.ledger_path
        if path is None or not path.is_file():
            return None
        return open_readonly(RunLedger, path)

    def health(self) -> Dict[str, object]:
        return {
            "ok": True,
            "queue_dir": str(self.queue_dir),
            "telemetry_dir": (None if self.telemetry_dir is None
                              else str(self.telemetry_dir)),
            "stores": {
                "jobs": self.jobstore_path.is_file(),
                "archive": self.archive_path.is_file(),
                "ledger": (self.ledger_path is not None
                           and self.ledger_path.is_file()),
            },
        }

    # ------------------------------------------------------------------ #
    # /api/designs
    # ------------------------------------------------------------------ #
    def designs(self) -> Dict[str, object]:
        """The design catalog: every registered design, all five roles.

        Spec-registered entries expose their full component breakdown
        (including the replacement role); plain builder entries report
        ``components: null`` -- they predate the declarative layer and
        have no spec to decompose.
        """
        from repro.sim.factory import design_names
        from repro.sim.registry import DESIGNS

        designs = []
        for name in design_names():
            entry = DESIGNS.resolve(name)
            spec = entry.spec
            components = None
            if spec is not None:
                components = {
                    role: {
                        "kind": getattr(spec, role).kind,
                        "params": getattr(spec, role).params_dict(),
                    }
                    for role in ("tags", "hit_predictor", "fetch",
                                 "writeback", "replacement")
                }
            designs.append({
                "name": entry.name,
                "description": entry.description,
                "model": None if spec is None else spec.model,
                "components": components,
            })
        return {"designs": designs}

    # ------------------------------------------------------------------ #
    # /api/sweeps
    # ------------------------------------------------------------------ #
    def sweeps(self) -> Dict[str, object]:
        """Archive listing merged with live job-store counts per sweep."""
        by_token: Dict[str, Dict[str, object]] = {}
        archive = self._archive()
        if archive is not None:
            with archive:
                for meta in archive.list_sweeps():
                    meta["archived"] = True
                    meta["jobs"] = None
                    by_token[str(meta["token"])] = meta
        store = self._jobstore()
        if store is not None:
            with store:
                for row in store.sweeps():
                    token = row["token"]
                    meta = by_token.setdefault(token, {
                        "token": token,
                        "description": row["description"],
                        "total": row["total"],
                        "records": 0,
                        "created_at": row["created_at"],
                        "completed_at": None,
                        "complete": False,
                        "archived": False,
                        "jobs": None,
                    })
                    counts = store.counts(token)
                    meta["jobs"] = {
                        "counts": counts,
                        "total": sum(counts.values()),
                        "unfinished": store.unfinished(token),
                    }
        sweeps = sorted(by_token.values(),
                        key=lambda meta: (meta["created_at"] or 0.0,
                                          meta["token"]))
        available = archive is not None or store is not None
        data: Dict[str, object] = {"available": available, "sweeps": sweeps}
        if not available:
            data["reason"] = (f"no job store or result archive under "
                             f"{self.queue_dir}")
        return data

    def _match_token(self, ref: str) -> str:
        """Resolve an exact token or unique prefix over both stores."""
        tokens = {str(meta["token"])
                  for meta in self.sweeps()["sweeps"]}  # type: ignore[index]
        if ref in tokens:
            return ref
        matches = sorted(token for token in tokens if token.startswith(ref))
        if not matches:
            raise KeyError(f"no sweep matches {ref!r}")
        if len(matches) > 1:
            raise ValueError(
                f"ambiguous sweep prefix {ref!r}: matches {matches}")
        return matches[0]

    def sweep(self, ref: str, include_records: bool = True
              ) -> Dict[str, object]:
        """One sweep's metadata, job counts, and archived records."""
        token = self._match_token(ref)
        data: Dict[str, object] = {"token": token}
        archive = self._archive()
        if archive is not None:
            with archive:
                meta = archive.sweep_meta(token)
                records = archive.records(token) if include_records else []
            if meta is not None:
                data.update(meta)
                data["archived"] = True
            if include_records:
                data["results"] = records
        store = self._jobstore()
        if store is not None:
            with store:
                row = store.sweep_row(token)
                if row is not None:
                    data.setdefault("description", row["description"])
                    data.setdefault("total", row["total"])
                    data.setdefault("created_at", row["created_at"])
                    counts = store.counts(token)
                    data["jobs"] = {
                        "counts": counts,
                        "total": sum(counts.values()),
                        "unfinished": store.unfinished(token),
                        "timing": store.timing(token),
                    }
        data.setdefault("archived", False)
        return data

    # ------------------------------------------------------------------ #
    # /api/queue
    # ------------------------------------------------------------------ #
    def queue(self, token: Optional[str] = None,
              include_jobs: bool = True) -> Dict[str, object]:
        """The data behind ``repro top``/``queue status --json``: job
        states, attempts, owners, worker heartbeats, and a drain ETA."""
        store = self._jobstore()
        data: Dict[str, object]
        unfinished = 0
        if store is None:
            data = {"available": False,
                    "reason": f"no job store at {self.jobstore_path},"
                              f" submit a sweep with 'repro queue submit'",
                    "sweeps": []}
        else:
            with store:
                if token is not None:
                    token = self._match_token(token)
                    row = store.sweep_row(token)
                    if row is None:
                        raise KeyError(f"sweep {token!r} is archived but no"
                                       f" longer in the job store")
                    counts = store.counts(token)
                    data = {
                        "available": True,
                        "token": token,
                        "description": row["description"],
                        "counts": counts,
                        "total": sum(counts.values()),
                        "timing": store.timing(token),
                    }
                    if include_jobs:
                        data["jobs"] = [self._job_dict(job)
                                        for job in store.jobs(token)]
                    unfinished = store.unfinished(token)
                else:
                    sweeps = []
                    for row in store.sweeps():
                        counts = store.counts(row["token"])
                        sweeps.append({
                            "token": row["token"],
                            "description": row["description"],
                            "counts": counts,
                            "total": sum(counts.values()),
                        })
                    data = {"available": True, "sweeps": sweeps}
                    unfinished = store.unfinished()
        data["unfinished"] = unfinished
        data["workers"] = self.workers(sweep=token, unfinished=unfinished)
        return data

    @staticmethod
    def _job_dict(job) -> Dict[str, object]:
        return {
            "seq": job.seq,
            "kind": job.kind,
            "trial_index": job.trial_index,
            "part": job.part,
            "state": job.state,
            "attempts": job.attempts,
            "max_attempts": job.max_attempts,
            "lease_owner": job.lease_owner,
            "created_at": job.created_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "run_seconds": job.run_seconds,
            "error": ((job.error or "").strip().splitlines() or [None])[-1],
        }

    def workers(self, sweep: Optional[str] = None,
                unfinished: int = 0) -> Dict[str, object]:
        """Ledger heartbeats with freshness and an aggregate drain ETA."""
        ledger = self._ledger()
        if ledger is None:
            return {"available": False,
                    "reason": "no run ledger (workers write one when"
                              " telemetry is enabled)",
                    "workers": []}
        with ledger:
            rows = ledger.heartbeats(sweep=sweep)
        now = time.time()
        workers = []
        total_rate = 0.0
        for row in rows:
            age = now - row["updated_at"]
            stale = age > HEARTBEAT_STALE_SECONDS
            rate = row["jobs_per_second"]
            if rate and not stale:
                total_rate += rate
            workers.append({
                "owner": row["owner"],
                "status": "stale" if stale else row["status"],
                "sweep": row["sweep"],
                "job_seq": row["job_seq"],
                "job_kind": row["job_kind"],
                "job_label": row["job_label"],
                "jobs_done": row["jobs_done"],
                "jobs_per_second": rate,
                "seen_seconds_ago": age,
                "stale": stale,
            })
        data: Dict[str, object] = {"available": True, "workers": workers,
                                   "jobs_per_second": total_rate}
        if unfinished and total_rate > 0:
            data["eta_seconds"] = unfinished / total_rate
        return data

    # ------------------------------------------------------------------ #
    # /api/runs
    # ------------------------------------------------------------------ #
    def runs(self, limit: int = 20, sweep: Optional[str] = None,
             kind: Optional[str] = None) -> Dict[str, object]:
        ledger = self._ledger()
        if ledger is None:
            return {"available": False,
                    "reason": self._no_ledger_reason(),
                    "runs": []}
        with ledger:
            rows = ledger.runs(limit=limit, sweep=sweep, kind=kind)
        return {"available": True,
                "runs": [self._run_dict(row) for row in rows]}

    def run_detail(self, ref: str) -> Dict[str, object]:
        """Resolve a run-id/sweep-token prefix and summarize it.

        Reuses :meth:`RunLedger.resolve` (``KeyError`` -> 404 upstream,
        ``ValueError`` on ambiguity -> 400) and
        :func:`repro.obs.ledger.summarize` for throughput and store and
        checkpoint hit rates recomputed from summed counters.
        """
        ledger = self._ledger()
        if ledger is None:
            raise KeyError(self._no_ledger_reason())
        with ledger:
            scope, rows = ledger.resolve(ref)
            summary = summarize(ledger, rows)
            runs = []
            for row in rows:
                record = self._run_dict(row)
                phases = ledger.phases_for([row["run_id"]])
                record["phases"] = {
                    name: {"seconds": seconds, "count": count}
                    for name, (seconds, count) in sorted(phases.items())
                }
                runs.append(record)
            if scope == "run":
                events = ledger.events_for(run_id=rows[0]["run_id"])
            else:
                events = ledger.events_for(sweep=rows[0]["sweep"])
            event_dicts = [dict(row) for row in events]
        data: Dict[str, object] = {
            "ref": ref,
            "scope": scope,
            "summary": self._summary_dict(summary),
            "runs": runs,
            "events": event_dicts,
        }
        if scope == "run":
            data["manifest"] = self._manifest(rows[0]["run_id"])
        return data

    def _no_ledger_reason(self) -> str:
        if self.ledger_path is None:
            return ("no telemetry directory (set REPRO_TELEMETRY_DIR or"
                    " use --root)")
        return f"no run ledger at {self.ledger_path}"

    def _manifest(self, run_id: str) -> Optional[Dict[str, object]]:
        """The run's JSONL manifest, torn-tail tolerant.

        :func:`read_manifest` stops at the first undecodable line, so a
        manifest whose writer crashed mid-record still serves every intact
        event instead of erroring the endpoint.
        """
        if self.telemetry_dir is None:
            return None
        path = find_manifest(self.telemetry_dir, run_id)
        if path is None:
            return None
        return {"path": str(path), "events": read_manifest(path)}

    @staticmethod
    def _run_dict(row) -> Dict[str, object]:
        data = dict(row)
        if data.get("labels"):
            try:
                data["labels"] = json.loads(data["labels"])
            except (TypeError, ValueError):
                pass
        return data

    @staticmethod
    def _summary_dict(summary: Dict[str, object]) -> Dict[str, object]:
        data = dict(summary)
        phases = data.get("phases")
        if isinstance(phases, dict):
            data["phases"] = {
                name: {"seconds": seconds, "count": count}
                for name, (seconds, count) in sorted(phases.items())
            }
        return data

    # ------------------------------------------------------------------ #
    # Figure sources
    # ------------------------------------------------------------------ #
    def figure_source(self, token: Optional[str] = None):
        """``(sweep meta, ResultSet)`` feeding the figure endpoints.

        Defaults to the newest archived sweep that has at least one
        record; a partial sweep renders partially (the dashboard shows
        bars appearing as workers drain the queue).
        """
        archive = self._archive()
        if archive is None:
            raise KeyError(f"no result archive at {self.archive_path};"
                           f" archive a sweep first")
        with archive:
            sweeps = archive.list_sweeps()
            candidates = [meta for meta in sweeps if meta["records"]]
            if token is not None:
                token = self._match_token(token)
                meta = archive.sweep_meta(token)
                if meta is None:
                    raise KeyError(f"sweep {token!r} is not archived")
            elif candidates:
                meta = max(candidates,
                           key=lambda m: (m["created_at"], m["token"]))
            else:
                raise KeyError("the result archive holds no records yet")
            records = archive.records(str(meta["token"]))
        return meta, ResultSet.from_records(records)


__all__ = [
    "QUEUE_DIRNAME",
    "ReadModel",
    "TELEMETRY_DIRNAME",
    "open_readonly",
]
