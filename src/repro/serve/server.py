"""The ``http.server`` shim behind ``repro serve``.

All routing and data assembly live in :mod:`repro.serve.api` /
:mod:`repro.serve.readmodel`; this module only binds a
:class:`ThreadingHTTPServer` and translates requests.  Stdlib only --
the service adds no dependencies to the reproduction.
"""

from __future__ import annotations

import sys
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlsplit

from repro.serve.api import error_response, handle_request
from repro.serve.readmodel import ReadModel

PathLike = Union[str, Path]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8035


class ReproServer(ThreadingHTTPServer):
    """One thread per request; every request opens fresh store handles,
    so no sqlite connection (or lock) is shared across threads."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, model: ReadModel, quiet: bool = False):
        self.model = model
        self.quiet = quiet
        super().__init__(address, RequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}/"


class RequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlsplit(self.path)
        try:
            response = handle_request(self.server.model, parsed.path,
                                      parse_qs(parsed.query))
        except Exception:  # pragma: no cover - defensive 500
            response = error_response(
                500, traceback.format_exc(limit=3).strip())
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def do_HEAD(self) -> None:  # noqa: N802
        parsed = urlsplit(self.path)
        response = handle_request(self.server.model, parsed.path,
                                  parse_qs(parsed.query))
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", False):
            sys.stderr.write("serve: %s - %s\n"
                             % (self.address_string(), format % args))


def create_server(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                  root: Optional[PathLike] = None,
                  queue_dir: Optional[PathLike] = None,
                  telemetry_dir: Optional[PathLike] = None,
                  quiet: bool = False) -> ReproServer:
    """A bound (but not yet serving) server; ``port=0`` picks a free port.

    ``root`` points at a trace-store-shaped tree (``<root>/queue``,
    ``<root>/telemetry``); without it the queue directory and telemetry
    root resolve exactly as the CLI's query commands do.
    """
    if root is not None:
        model = ReadModel.at_root(root)
    else:
        model = ReadModel(queue_dir=queue_dir, telemetry_dir=telemetry_dir)
    return ReproServer((host, port), model, quiet=quiet)


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          root: Optional[PathLike] = None,
          quiet: bool = False) -> int:
    """Blocking entry point of ``repro serve``."""
    server = create_server(host=host, port=port, root=root, quiet=quiet)
    model = server.model
    telemetry = (str(model.telemetry_dir) if model.telemetry_dir is not None
                 else "(none; set REPRO_TELEMETRY_DIR or --root)")
    print(f"repro serve on {server.url}")
    print(f"  queue dir: {model.queue_dir}")
    print(f"  telemetry: {telemetry}")
    print(f"  dashboard: {server.url}  ·  API: {server.url}api/sweeps")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nserve: shutting down")
    finally:
        server.server_close()
    return 0


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ReproServer",
    "RequestHandler",
    "create_server",
    "serve",
]
