"""Dependency-free SVG figures served by ``repro serve``.

Grouped bar charts in the shape of the paper's headline figures: fig6
(miss ratio per design/workload) and fig7 (speedup over no cache), with
95% confidence-interval error bars taken from archived sampled runs
(``ExperimentResult.extra['sampling_*_half_width']``, the half-widths
:class:`~repro.stats.sampling.WindowSeries` computed during sampling).

Exactness contract: every bar ``<rect>`` carries ``data-mean`` and
``data-half-width`` attributes rendered with :func:`repr`, so the raw
ResultSet floats round-trip through the SVG unchanged -- tests (and
scripts scraping the figures) compare them with ``==``, not "close to".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr

from repro.sim.resultset import ResultSet

#: Fill colors per series (design), Tableau-ish and colorblind-safe.
PALETTE = (
    "#4e79a7",  # blue
    "#f28e2b",  # orange
    "#59a14f",  # green
    "#e15759",  # red
    "#b07aa1",  # purple
    "#76b7b2",  # teal
    "#edc948",  # yellow
    "#9c755f",  # brown
)

_AXIS = "#444444"
_GRID = "#dddddd"
_TEXT = "#222222"


@dataclass(frozen=True)
class Bar:
    """One bar: raw mean and 95% CI half-width (0 when unsampled)."""

    series: str
    mean: float
    half_width: float = 0.0


@dataclass(frozen=True)
class BarGroup:
    label: str
    bars: Tuple[Bar, ...] = field(default_factory=tuple)


def _nice_step(span: float, ticks: int = 5) -> float:
    """A 1/2/2.5/5 x 10^k step giving roughly ``ticks`` divisions."""
    if span <= 0:
        return 1.0
    raw = span / ticks
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        if raw <= factor * magnitude:
            return factor * magnitude
    return 10.0 * magnitude


def render_grouped_bars(title: str, ylabel: str,
                        groups: Sequence[BarGroup],
                        scale: float = 1.0,
                        value_format: str = "{:.3f}",
                        figure_id: str = "figure") -> str:
    """A grouped bar chart as a standalone ``<svg>`` document.

    ``scale`` converts raw means into plotted units (e.g. 100 for
    percent) -- the ``data-mean``/``data-half-width`` attributes always
    carry the *raw* values via :func:`repr`.
    """
    series: List[str] = []
    for group in groups:
        for bar in group.bars:
            if bar.series not in series:
                series.append(bar.series)
    color = {name: PALETTE[i % len(PALETTE)]
             for i, name in enumerate(series)}

    bar_w, bar_gap, group_pad = 22, 4, 18
    slots = max((len(group.bars) for group in groups), default=1)
    group_w = slots * (bar_w + bar_gap) - bar_gap + 2 * group_pad
    left, right, top, bottom = 64, 20, 54, 58
    plot_h = 260
    plot_w = max(group_w * max(len(groups), 1), 240)
    width = left + plot_w + right
    height = top + plot_h + bottom

    peak = max((abs(bar.mean) + bar.half_width
                for group in groups for bar in group.bars), default=0.0)
    peak *= scale
    step = _nice_step(peak if peak > 0 else 1.0)
    y_max = step
    while y_max < peak * 1.02:
        y_max += step

    def y_of(value: float) -> float:
        return top + plot_h - (value / y_max) * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="0 0 {width} {height}"'
        f' role="img" id={quoteattr(figure_id)}>'
    )
    parts.append(
        f'<style>text{{font:12px sans-serif;fill:{_TEXT}}}'
        f'.title{{font:bold 14px sans-serif}}'
        f'.muted{{fill:#666666;font-size:11px}}</style>'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    parts.append(f'<text class="title" x="{left}" y="22">'
                 f'{escape(title)}</text>')

    # Gridlines, ticks, axes.
    tick = 0.0
    while tick <= y_max + 1e-9:
        y = y_of(tick)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}"'
                     f' y2="{y:.1f}" stroke="{_GRID}" stroke-width="1"/>')
        parts.append(f'<text class="muted" x="{left - 8}" y="{y + 4:.1f}"'
                     f' text-anchor="end">{tick:g}</text>')
        tick += step
    parts.append(f'<line x1="{left}" y1="{top}" x2="{left}"'
                 f' y2="{top + plot_h}" stroke="{_AXIS}"/>')
    parts.append(f'<line x1="{left}" y1="{top + plot_h}"'
                 f' x2="{left + plot_w}" y2="{top + plot_h}"'
                 f' stroke="{_AXIS}"/>')
    parts.append(f'<text transform="rotate(-90)" x="{-(top + plot_h / 2)}"'
                 f' y="16" text-anchor="middle">{escape(ylabel)}</text>')

    # Legend.
    lx = left
    for name in series:
        parts.append(f'<rect x="{lx}" y="32" width="10" height="10"'
                     f' fill="{color[name]}"/>')
        parts.append(f'<text x="{lx + 14}" y="41">{escape(name)}</text>')
        lx += 14 + 8 * max(len(name), 4) + 16

    # Bars with CI whiskers.
    for gi, group in enumerate(groups):
        gx = left + gi * group_w
        inner_w = len(group.bars) * (bar_w + bar_gap) - bar_gap
        bx = gx + (group_w - inner_w) / 2
        for bar in group.bars:
            value = bar.mean * scale
            half = bar.half_width * scale
            y_top = y_of(value)
            tooltip = (f"{bar.series} / {group.label}: "
                       f"{value_format.format(value)} ± "
                       f"{value_format.format(half)}")
            parts.append(
                f'<rect x="{bx:.1f}" y="{y_top:.1f}" width="{bar_w}"'
                f' height="{top + plot_h - y_top:.1f}"'
                f' fill="{color[bar.series]}"'
                f' data-series={quoteattr(bar.series)}'
                f' data-group={quoteattr(group.label)}'
                f' data-mean={quoteattr(repr(bar.mean))}'
                f' data-half-width={quoteattr(repr(bar.half_width))}>'
                f'<title>{escape(tooltip)}</title></rect>'
            )
            if bar.half_width > 0:
                cx = bx + bar_w / 2
                y_lo, y_hi = y_of(value - half), y_of(value + half)
                parts.append(f'<line x1="{cx:.1f}" y1="{y_hi:.1f}"'
                             f' x2="{cx:.1f}" y2="{y_lo:.1f}"'
                             f' stroke="{_AXIS}" stroke-width="1.5"/>')
                for y_cap in (y_hi, y_lo):
                    parts.append(f'<line x1="{cx - 4:.1f}" y1="{y_cap:.1f}"'
                                 f' x2="{cx + 4:.1f}" y2="{y_cap:.1f}"'
                                 f' stroke="{_AXIS}" stroke-width="1.5"/>')
            bx += bar_w + bar_gap
        parts.append(f'<text x="{gx + group_w / 2:.1f}"'
                     f' y="{top + plot_h + 18}" text-anchor="middle"'
                     f' class="muted">{escape(group.label)}</text>')

    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------- #
# Paper figures from a ResultSet
# ---------------------------------------------------------------------- #
def _metric_groups(resultset: ResultSet, metric: str,
                   ci_key: str) -> List[BarGroup]:
    designs = resultset.designs
    capacities = resultset.capacities
    multi_capacity = len(capacities) > 1
    groups: List[BarGroup] = []
    for workload in resultset.workloads:
        for capacity in capacities:
            bars: List[Bar] = []
            for design in designs:
                subset = resultset.filter(design=design, workload=workload,
                                          capacity=capacity)
                if not subset:
                    continue
                result = subset[0]
                value = getattr(result, metric)
                if value is None:
                    continue
                bars.append(Bar(series=design, mean=value,
                                half_width=result.extra.get(ci_key, 0.0)))
            if not bars:
                continue
            label = (f"{workload} @ {capacity}" if multi_capacity
                     else workload)
            groups.append(BarGroup(label=label, bars=tuple(bars)))
    return groups


def fig6_svg(resultset: ResultSet, subtitle: str = "") -> str:
    """Fig.6-style miss ratio (%) per design/workload with 95% CI bars."""
    title = "Fig. 6 — DRAM cache miss ratio (95% CI)"
    if subtitle:
        title += f" · {subtitle}"
    groups = _metric_groups(resultset, "miss_ratio",
                            "sampling_miss_ratio_half_width")
    return render_grouped_bars(title, "miss ratio (%)", groups, scale=100.0,
                               value_format="{:.2f}", figure_id="fig6")


def fig7_svg(resultset: ResultSet, subtitle: str = "") -> str:
    """Fig.7-style speedup over no DRAM cache with 95% CI bars."""
    title = "Fig. 7 — speedup vs no DRAM cache (95% CI)"
    if subtitle:
        title += f" · {subtitle}"
    groups = _metric_groups(resultset, "speedup_vs_no_cache",
                            "sampling_speedup_half_width")
    return render_grouped_bars(title, "speedup vs no cache", groups,
                               scale=1.0, value_format="{:.3f}",
                               figure_id="fig7")


def compare_svg(sides: Sequence[Tuple[str, Dict[str, object]]]) -> str:
    """Run-comparison view: per-phase wall-clock of two (or more) refs.

    ``sides`` pairs a display label with a ``summarize()``-shaped dict
    (``phases`` mapping name -> ``{"seconds": ..., "count": ...}``).
    """
    phase_names: List[str] = []
    for _, summary in sides:
        for name in summary.get("phases", {}):
            if name not in phase_names:
                phase_names.append(name)
    groups = []
    for name in phase_names:
        bars = []
        for label, summary in sides:
            phases = summary.get("phases", {})
            seconds = float(phases.get(name, {}).get("seconds", 0.0))
            bars.append(Bar(series=label, mean=seconds))
        groups.append(BarGroup(label=name, bars=tuple(bars)))
    labels = " vs ".join(label for label, _ in sides)
    return render_grouped_bars(f"Run comparison — {labels}",
                               "wall-clock seconds", groups,
                               value_format="{:.2f}", figure_id="compare")


__all__ = [
    "Bar",
    "BarGroup",
    "PALETTE",
    "compare_svg",
    "fig6_svg",
    "fig7_svg",
    "render_grouped_bars",
]
