"""The single-template HTML dashboard behind ``repro serve``.

One self-contained page (inline CSS + JS, zero external assets) that
polls the JSON API: sweep progress and archive state every few seconds,
worker heartbeats with staleness highlighting, recent ledger runs, and
the fig6/fig7 SVGs inlined so error bars update while a worker fleet
drains the queue.  Polling (not SSE) keeps the server a plain
``http.server`` request/response loop with no long-lived connections.
"""

from __future__ import annotations

#: Milliseconds between JSON polls / figure refreshes.
POLL_MS = 3000
FIGURE_POLL_MS = 10000

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro · results dashboard</title>
<style>
  body { font: 14px/1.45 sans-serif; margin: 0; color: #222;
         background: #f6f7f9; }
  header { background: #232f3e; color: #fff; padding: 10px 20px;
           display: flex; align-items: baseline; gap: 14px; }
  header h1 { font-size: 17px; margin: 0; }
  header .sub { color: #9db2c9; font-size: 12px; }
  main { padding: 16px 20px; max-width: 1180px; margin: 0 auto; }
  section { background: #fff; border: 1px solid #e3e6ea; border-radius: 6px;
            padding: 12px 16px; margin-bottom: 16px; }
  h2 { font-size: 14px; margin: 0 0 8px; text-transform: uppercase;
       letter-spacing: .04em; color: #555; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td { text-align: left; padding: 3px 10px 3px 0; white-space: nowrap; }
  th { color: #777; font-weight: 600; border-bottom: 1px solid #e3e6ea; }
  td.num { font-variant-numeric: tabular-nums; }
  .bar { background: #e3e6ea; border-radius: 3px; height: 10px;
         width: 160px; display: inline-block; vertical-align: middle; }
  .bar i { display: block; height: 10px; border-radius: 3px;
           background: #4e79a7; }
  .ok { color: #2b7a2b; } .bad { color: #b03a2e; } .muted { color: #888; }
  .stale { color: #b03a2e; font-weight: 600; }
  .figures { display: flex; flex-wrap: wrap; gap: 16px; }
  .figures svg { max-width: 100%; height: auto; }
  code { background: #eef1f4; padding: 1px 4px; border-radius: 3px; }
</style>
</head>
<body>
<header>
  <h1>repro results dashboard</h1>
  <span class="sub" id="health">connecting…</span>
  <span class="sub" id="updated"></span>
</header>
<main>
  <section><h2>Sweeps</h2><div id="sweeps" class="muted">loading…</div></section>
  <section><h2>Workers</h2><div id="workers" class="muted">loading…</div></section>
  <section><h2>Recent runs</h2><div id="runs" class="muted">loading…</div></section>
  <section><h2>Recent events</h2><div id="events" class="muted">loading…</div></section>
  <section><h2>Figures</h2>
    <div class="figures"><div id="fig6"></div><div id="fig7"></div></div>
  </section>
</main>
<script>
"use strict";
const esc = (s) => String(s ?? "").replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmtAge = (s) => s == null ? "-" : (s < 90 ? s.toFixed(0) + "s"
  : (s / 60).toFixed(1) + "m");

async function getJSON(url) {
  const r = await fetch(url);
  return { ok: r.ok, data: await r.json() };
}

function progressBar(done, total) {
  const pct = total ? Math.round(100 * done / total) : 0;
  return `<span class="bar"><i style="width:${pct}%"></i></span>
          <span class="num">${done}/${total}</span>`;
}

function renderSweeps(d) {
  const el = document.getElementById("sweeps");
  if (!d.available) { el.innerHTML = `<span class="muted">${esc(d.reason)}</span>`; return; }
  if (!d.sweeps.length) { el.innerHTML = '<span class="muted">no sweeps yet</span>'; return; }
  const rows = d.sweeps.map((s) => {
    const jobs = s.jobs ? `${s.jobs.counts.done} done / ${s.jobs.counts.failed} failed`
                        : '<span class="muted">pruned</span>';
    const state = s.complete ? '<span class="ok">complete</span>'
      : (s.archived ? '<span class="muted">partial</span>'
                    : '<span class="muted">unarchived</span>');
    return `<tr><td><code>${esc(String(s.token).slice(0, 12))}</code></td>
      <td>${esc(s.description)}</td>
      <td>${progressBar(s.records, s.total ?? 0)}</td>
      <td>${state}</td><td>${jobs}</td></tr>`;
  }).join("");
  el.innerHTML = `<table><tr><th>token</th><th>spec</th>
    <th>archived records</th><th>state</th><th>jobs</th></tr>${rows}</table>`;
}

function renderWorkers(w, unfinished) {
  const el = document.getElementById("workers");
  if (!w.available) { el.innerHTML = `<span class="muted">${esc(w.reason)}</span>`; return; }
  if (!w.workers.length) { el.innerHTML = '<span class="muted">none active</span>'; return; }
  const rows = w.workers.map((h) => `<tr>
    <td><code>${esc(h.owner)}</code></td>
    <td class="${h.stale ? "stale" : "ok"}">${esc(h.status)}</td>
    <td>${esc(h.job_kind ?? "-")} ${h.job_seq == null ? "" : "#" + h.job_seq}</td>
    <td class="num">${h.jobs_done}</td>
    <td class="num">${h.jobs_per_second ? h.jobs_per_second.toFixed(2) + "/s" : "-"}</td>
    <td class="num">${fmtAge(h.seen_seconds_ago)} ago</td></tr>`).join("");
  const eta = w.eta_seconds != null
    ? `<p class="muted">ETA: ${unfinished} unfinished jobs /
       ${w.jobs_per_second.toFixed(2)} jobs/s ≈ ${fmtAge(w.eta_seconds)}</p>` : "";
  el.innerHTML = `<table><tr><th>worker</th><th>status</th><th>job</th>
    <th>done</th><th>rate</th><th>seen</th></tr>${rows}</table>${eta}`;
}

function renderRuns(d) {
  const el = document.getElementById("runs");
  if (!d.available) { el.innerHTML = `<span class="muted">${esc(d.reason)}</span>`; return; }
  if (!d.runs.length) { el.innerHTML = '<span class="muted">no runs recorded</span>'; return; }
  const rows = d.runs.map((r) => `<tr>
    <td><code>${esc(String(r.run_id).slice(0, 10))}</code></td>
    <td>${esc(r.kind)}</td><td>${esc(r.label ?? "")}</td>
    <td class="${r.status === "ok" ? "ok" : "bad"}">${esc(r.status)}</td>
    <td class="num">${(r.wall_seconds ?? 0).toFixed(2)}s</td></tr>`).join("");
  el.innerHTML = `<table><tr><th>run</th><th>kind</th><th>label</th>
    <th>status</th><th>wall</th></tr>${rows}</table>`;
}

function renderEvents(events) {
  const el = document.getElementById("events");
  if (!events.length) { el.innerHTML = '<span class="muted">none</span>'; return; }
  const rows = events.map((e) => `<tr>
    <td class="num">${new Date(e.ts * 1000).toLocaleTimeString()}</td>
    <td>${esc(e.kind)}</td>
    <td><code>${esc(String(e.sweep ?? "").slice(0, 10))}</code></td>
    <td>${esc(e.detail ?? "")}</td></tr>`).join("");
  el.innerHTML = `<table><tr><th>time</th><th>event</th><th>sweep</th>
    <th>detail</th></tr>${rows}</table>`;
}

async function refresh() {
  try {
    const [health, sweeps, queue, runs] = await Promise.all([
      getJSON("/api/health"), getJSON("/api/sweeps"),
      getJSON("/api/queue?jobs=0"), getJSON("/api/runs?limit=10")]);
    document.getElementById("health").textContent =
      `queue: ${health.data.queue_dir} · telemetry: ${health.data.telemetry_dir ?? "none"}`;
    renderSweeps(sweeps.data);
    renderWorkers(queue.data.workers ?? { available: false, reason: "n/a" },
                  queue.data.unfinished ?? 0);
    renderRuns(runs.data);
    const events = (runs.data.runs?.length
      ? await getJSON(`/api/runs/${encodeURIComponent(runs.data.runs[0].sweep
                                   ?? runs.data.runs[0].run_id)}`)
      : { ok: false, data: {} });
    renderEvents(events.ok ? (events.data.events ?? []).slice(0, 12) : []);
    document.getElementById("updated").textContent =
      "updated " + new Date().toLocaleTimeString();
  } catch (err) {
    document.getElementById("health").textContent = "refresh failed: " + err;
  }
}

async function refreshFigures() {
  for (const name of ["fig6", "fig7"]) {
    try {
      const r = await fetch("/api/figures/" + name);
      const el = document.getElementById(name);
      if (r.ok) { el.innerHTML = await r.text(); }
      else {
        const body = await r.json().catch(() => ({ error: r.statusText }));
        el.innerHTML = `<span class="muted">${esc(name)}: ${esc(body.error)}</span>`;
      }
    } catch (err) { /* keep the last good figure on transient errors */ }
  }
}

refresh(); refreshFigures();
setInterval(refresh, __POLL_MS__);
setInterval(refreshFigures, __FIGURE_POLL_MS__);
</script>
</body>
</html>
"""


def render_dashboard() -> str:
    return (_PAGE
            .replace("__POLL_MS__", str(POLL_MS))
            .replace("__FIGURE_POLL_MS__", str(FIGURE_POLL_MS)))


__all__ = ["FIGURE_POLL_MS", "POLL_MS", "render_dashboard"]
