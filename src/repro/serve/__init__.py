"""Queryable results service and live dashboard (``repro serve``).

A zero-dependency ``http.server`` layer over the reproduction's three
stores -- the durable work queue's :class:`~repro.queue.JobStore`, the
:class:`~repro.queue.ResultArchive`, and the telemetry
:class:`~repro.obs.ledger.RunLedger` -- exposing a JSON API
(``/api/sweeps``, ``/api/runs``, ``/api/queue``), server-rendered SVG
paper figures with 95% CI error bars (``/api/figures/fig6``...), and an
auto-refreshing HTML dashboard.  See ``README.md`` ("Serving results")
and ``examples/serve_tour.py``.
"""

from repro.serve.api import FIGURES, Response, handle_request
from repro.serve.figures import (
    Bar,
    BarGroup,
    compare_svg,
    fig6_svg,
    fig7_svg,
    render_grouped_bars,
)
from repro.serve.readmodel import ReadModel, open_readonly
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ReproServer,
    create_server,
    serve,
)

__all__ = [
    "Bar",
    "BarGroup",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "FIGURES",
    "ReadModel",
    "ReproServer",
    "Response",
    "compare_svg",
    "create_server",
    "fig6_svg",
    "fig7_svg",
    "handle_request",
    "open_readonly",
    "render_grouped_bars",
    "serve",
]
