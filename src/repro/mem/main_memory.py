"""Off-chip main memory model.

Misses and footprint fetches from the DRAM cache designs arrive here.  The
model answers with latencies from the DDR3-1600 timing model and keeps the
traffic and row-activation statistics that the bandwidth/energy parts of the
evaluation rely on:

* **off-chip traffic** in 64-byte blocks (what the overfetch ratios of
  Table V are computed against), and
* **row activations**: a footprint fetched as one batch activates its row
  once, whereas block-granularity fetches (Alloy Cache) activate a row per
  block in the common case (Section V-D).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config.system import DramChannelConfig
from repro.dram.controller import DramController
from repro.stats.counters import StatGroup
from repro.trace.record import BLOCK_SIZE


class MainMemory:
    """The off-chip DRAM behind the die-stacked cache."""

    def __init__(self, config: DramChannelConfig = None,
                 cpu_frequency_ghz: float = 3.0) -> None:
        if config is None:
            from repro.config.system import SystemConfig

            config = SystemConfig().offchip_dram
        self.controller = DramController(config, cpu_frequency_ghz)
        self.blocks_read = 0
        self.blocks_written = 0
        self.requests = 0

    # ------------------------------------------------------------------ #
    def read_block(self, block_address: int, now_cpu: int = 0) -> int:
        """Fetch one 64-byte block; returns latency in CPU cycles."""
        result = self.controller.access(
            block_address * BLOCK_SIZE, BLOCK_SIZE, now_cpu, is_write=False
        )
        self.blocks_read += 1
        self.requests += 1
        return result.latency_cpu_cycles

    def write_block(self, block_address: int, now_cpu: int = 0) -> int:
        """Write one 64-byte block back; returns latency in CPU cycles."""
        result = self.controller.access(
            block_address * BLOCK_SIZE, BLOCK_SIZE, now_cpu, is_write=True
        )
        self.blocks_written += 1
        self.requests += 1
        return result.latency_cpu_cycles

    def fetch_blocks(self, block_addresses: Sequence[int], now_cpu: int = 0) -> int:
        """Fetch a batch of blocks (a page footprint) from memory.

        The blocks of a footprint are spatially clustered, so the controller
        naturally coalesces them into few row activations; the returned value
        is the latency of the *critical* (first) block -- the remaining blocks
        stream in the background, which is how the Footprint/Unison fill path
        behaves.
        """
        if not block_addresses:
            return 0
        critical_latency = 0
        for index, block in enumerate(block_addresses):
            result = self.controller.access(
                block * BLOCK_SIZE, BLOCK_SIZE, now_cpu, is_write=False
            )
            self.blocks_read += 1
            if index == 0:
                critical_latency = result.latency_cpu_cycles
        self.requests += 1
        return critical_latency

    def write_blocks(self, block_addresses: Iterable[int], now_cpu: int = 0) -> None:
        """Write back a batch of dirty blocks (page eviction)."""
        for block in block_addresses:
            self.controller.access(
                block * BLOCK_SIZE, BLOCK_SIZE, now_cpu, is_write=True
            )
            self.blocks_written += 1
        self.requests += 1

    # ------------------------------------------------------------------ #
    @property
    def blocks_transferred(self) -> int:
        """Total off-chip traffic in blocks (reads + writes)."""
        return self.blocks_read + self.blocks_written

    @property
    def row_activations(self) -> int:
        """Off-chip DRAM row activations (energy proxy)."""
        return self.controller.total_activations

    def stats(self) -> StatGroup:
        """Traffic and activation statistics."""
        group = StatGroup("main_memory")
        group.set("blocks_read", self.blocks_read)
        group.set("blocks_written", self.blocks_written)
        group.set("blocks_transferred", self.blocks_transferred)
        group.set("row_activations", self.row_activations)
        group.set("requests", self.requests)
        return group
