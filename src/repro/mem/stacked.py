"""Die-stacked DRAM device.

The stacked DRAM holds the cache's data (and embedded tags for Unison and
Alloy).  The cache models express their operations in terms of row-relative
accesses -- "read 32 bytes of tag metadata from row R", "read block b of row R
overlapped with the tags", "fill these blocks of row R" -- and this class maps
them onto the four-channel DDR-like timing model of Table III.
"""

from __future__ import annotations

from repro.config.system import DramChannelConfig
from repro.dram.controller import AccessResult, DramController
from repro.stats.counters import StatGroup
from repro.trace.record import BLOCK_SIZE


class StackedDram:
    """In-package DRAM exposed at row/block granularity to the cache models."""

    def __init__(self, config: DramChannelConfig = None,
                 cpu_frequency_ghz: float = 3.0) -> None:
        if config is None:
            from repro.config.system import SystemConfig

            config = SystemConfig().stacked_dram
        self.config = config
        self.controller = DramController(config, cpu_frequency_ghz)
        self.row_bytes = config.row_buffer_bytes

    # ------------------------------------------------------------------ #
    def row_address(self, row_index: int, offset: int = 0) -> int:
        """Byte address of ``offset`` within logical cache row ``row_index``."""
        if offset >= self.row_bytes:
            raise ValueError("offset exceeds the row size")
        return row_index * self.row_bytes + offset

    # ------------------------------------------------------------------ #
    def read(self, row_index: int, offset: int, num_bytes: int,
             now_cpu: int = 0) -> AccessResult:
        """Read ``num_bytes`` at ``offset`` within a row."""
        return self.controller.access(
            self.row_address(row_index, offset), num_bytes, now_cpu, is_write=False
        )

    def write(self, row_index: int, offset: int, num_bytes: int,
              now_cpu: int = 0) -> AccessResult:
        """Write ``num_bytes`` at ``offset`` within a row."""
        return self.controller.access(
            self.row_address(row_index, offset), num_bytes, now_cpu, is_write=True
        )

    def read_block(self, row_index: int, block_offset_bytes: int,
                   now_cpu: int = 0) -> AccessResult:
        """Read one 64-byte data block from a row."""
        return self.read(row_index, block_offset_bytes, BLOCK_SIZE, now_cpu)

    def fill_blocks(self, row_index: int, block_offsets_bytes, now_cpu: int = 0) -> int:
        """Write a batch of blocks into a row (cache fill); returns total cycles."""
        last = 0
        for offset in block_offsets_bytes:
            result = self.write(row_index, offset, BLOCK_SIZE, now_cpu)
            last = max(last, result.latency_cpu_cycles)
        return last

    # ------------------------------------------------------------------ #
    @property
    def row_activations(self) -> int:
        """Stacked-DRAM row activations (energy proxy)."""
        return self.controller.total_activations

    @property
    def bytes_transferred(self) -> int:
        """Bytes moved over the TSV buses."""
        return self.controller.total_bytes_transferred

    def stats(self) -> StatGroup:
        """Device statistics."""
        group = StatGroup("stacked_dram")
        group.set("row_activations", self.row_activations)
        group.set("bytes_transferred", self.bytes_transferred)
        group.set("requests", self.controller.total_requests)
        return group
