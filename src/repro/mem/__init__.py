"""Memory devices built on the DRAM timing model.

* :class:`repro.mem.main_memory.MainMemory` -- the off-chip DDR3-1600 channel;
  the DRAM cache designs send their misses, footprint fetches and dirty
  write-backs here.  It tracks off-chip traffic and row activations (the
  energy proxy of Section V-D).
* :class:`repro.mem.stacked.StackedDram` -- the in-package die-stacked DRAM
  that holds the cache's data (and, for Unison and Alloy, its tags).
"""

from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram

__all__ = ["MainMemory", "StackedDram"]
