"""Synthetic server workload models.

The paper evaluates CloudSuite (Data Analytics, Data Serving, Software
Testing, Web Search, Web Serving) and TPC-H on MonetDB using full-system
memory traces.  Those traces cannot be redistributed, so this subpackage
provides statistically-calibrated synthetic generators that reproduce the
trace properties the evaluation depends on:

* page-level **spatial locality** (how many blocks of a page are touched
  during its residency -- the footprint density),
* **code/footprint correlation** (the same (PC, offset) pair recurring with
  the same footprint, which is what the footprint predictor exploits),
* **temporal reuse** at the DRAM-cache level (low, since L1/L2 filter it),
* the **singleton fraction** (pages whose footprint is a single block),
* the **working-set size** relative to the evaluated cache capacities.

See DESIGN.md ("Substitutions") for why matching these properties preserves
the paper's qualitative results.
"""

from repro.workloads.profile import WorkloadProfile
from repro.workloads.generator import GENERATOR_VERSION, SyntheticWorkload
from repro.workloads.tracefile import TraceFileWorkload
from repro.workloads.cloudsuite import (
    CLOUDSUITE_WORKLOADS,
    ALL_WORKLOADS,
    data_analytics,
    data_serving,
    software_testing,
    web_search,
    web_serving,
    tpch_queries,
    workload_by_name,
)

__all__ = [
    "WorkloadProfile",
    "SyntheticWorkload",
    "TraceFileWorkload",
    "GENERATOR_VERSION",
    "CLOUDSUITE_WORKLOADS",
    "ALL_WORKLOADS",
    "data_analytics",
    "data_serving",
    "software_testing",
    "web_search",
    "web_serving",
    "tpch_queries",
    "workload_by_name",
]
