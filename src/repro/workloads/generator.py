"""Synthetic L2-miss-stream generator.

:class:`SyntheticWorkload` turns a :class:`~repro.workloads.profile.WorkloadProfile`
into a deterministic, reproducible stream of
:class:`~repro.trace.record.MemoryAccess` records that statistically matches
the workload's description.

The model of program behaviour is deliberately simple and matches the mental
model the Footprint Cache / Unison Cache papers use:

* the workload owns a large set of fixed-size *data regions* (4 KB by default);
* a limited set of *code sites* (identified by PC) repeatedly traverse those
  regions; each code site has a canonical *access pattern* (which blocks of a
  region it touches), perturbed by per-traversal noise;
* region popularity follows a Zipf-like distribution, and a small fraction of
  traversals touch only one block (*singletons*);
* the streams of all cores are interleaved round-robin, which is what the
  DRAM cache controller observes.

Every random decision is drawn from a seeded ``random.Random`` instance whose
seed mixes the run seed with a *stable* hash of the workload name, so a given
(profile, seed, num_cores) triple produces the same trace in every process
and on every run -- the property the sweep executor's trace cache and the
parallel/serial equivalence guarantee rely on.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from itertools import islice
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.trace.record import AccessType, MemoryAccess
from repro.utils.hashing import mix64
from repro.workloads.profile import WorkloadProfile

#: Base value for generated program counters; gives PCs a realistic text-segment look.
_PC_BASE = 0x0000_0000_0040_0000

#: Version of the trace-generation algorithm.  Bump whenever a change to this
#: module (or to :mod:`repro.workloads.profile` scaling) alters the stream a
#: given (profile, num_cores, seed) produces: the on-disk
#: :class:`repro.trace.store.TraceStore` and the CI trace cache key their
#: entries on it, so stale traces are never replayed after such a change.
GENERATOR_VERSION = 1

#: Accesses per chunk yielded by :meth:`SyntheticWorkload.iter_chunks`.
DEFAULT_CHUNK_SIZE = 16384


class SyntheticWorkload:
    """Deterministic synthetic workload calibrated by a :class:`WorkloadProfile`.

    Parameters
    ----------
    profile:
        The statistical description of the workload.
    num_cores:
        Number of cores whose access streams are interleaved (the paper's CMP
        has 16).
    seed:
        Seed for the deterministic pseudo-random generator.
    """

    def __init__(self, profile: WorkloadProfile, num_cores: int = 16, seed: int = 1) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.profile = profile
        self.num_cores = num_cores
        self.seed = seed
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which would make traces -- and therefore every
        # benchmark figure -- differ from run to run and process to process.
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self._rng = random.Random(mix64(seed) ^ mix64(name_hash))
        # Per-core state: pending accesses of the in-flight traversal and the
        # current code site with its remaining run length.
        self._pending: List[Deque[MemoryAccess]] = [deque() for _ in range(num_cores)]
        self._current_pc_index: List[int] = [
            self._rng.randrange(profile.num_code_regions) for _ in range(num_cores)
        ]
        self._pc_run_remaining: List[int] = [
            max(1, profile.pc_locality_run) for _ in range(num_cores)
        ]
        # Recently traversed (region, code-site) pairs per core: a temporal
        # re-visit re-walks the same structure with the same code, which is
        # what makes footprints repeatable in real server software.
        self._recent_regions: List[Deque[Tuple[int, int]]] = [
            deque(maxlen=32) for _ in range(num_cores)
        ]
        self._timestamp = 0
        self._pattern_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def accesses(self, count: int) -> Iterator[MemoryAccess]:
        """Yield the next ``count`` accesses of the interleaved stream."""
        if count < 0:
            raise ValueError("count must be non-negative")
        produced = 0
        core = 0
        while produced < count:
            queue = self._pending[core]
            if not queue:
                self._start_traversal(core)
                queue = self._pending[core]
            yield queue.popleft()
            produced += 1
            core = (core + 1) % self.num_cores

    def iter_chunks(self, count: int,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    ) -> Iterator[List[MemoryAccess]]:
        """Yield the next ``count`` accesses as lists of ``chunk_size``.

        Chunked generation is what lets the trace store and the executor
        stream a multi-million-access trace to disk while it is being
        produced, instead of materializing one giant list first.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        stream = self.accesses(count)
        while True:
            chunk = list(islice(stream, chunk_size))
            if not chunk:
                return
            yield chunk

    def generate(self, count: int) -> List[MemoryAccess]:
        """Materialize the next ``count`` accesses as a list."""
        return list(self.accesses(count))

    # ------------------------------------------------------------------ #
    # Traversal construction
    # ------------------------------------------------------------------ #
    def _start_traversal(self, core: int) -> None:
        """Queue up the accesses of one region traversal for ``core``."""
        profile = self.profile
        rng = self._rng

        region, reused_pc = self._choose_region(core)
        if reused_pc is not None:
            pc_index = reused_pc
        else:
            pc_index = self._advance_code_site(core)
        self._recent_regions[core].append((region, pc_index))

        singleton = rng.random() < profile.singleton_fraction
        if singleton:
            # Singleton traversals come from dedicated code sites so that the
            # footprint/singleton predictors can learn them separately.
            pc_index = profile.num_code_regions + (pc_index % max(1, profile.num_code_regions // 8))
            offsets = [self._singleton_offset(pc_index, region)]
        else:
            offsets = self._traversal_offsets(pc_index, region)

        pc = _PC_BASE + pc_index * 4
        region_base = region * profile.region_size
        queue = self._pending[core]
        for offset in offsets:
            address = region_base + offset * profile.block_size
            access_type = (
                AccessType.WRITE
                if rng.random() < profile.write_fraction
                else AccessType.READ
            )
            queue.append(
                MemoryAccess(
                    address=address,
                    pc=pc,
                    access_type=access_type,
                    core_id=core,
                    timestamp=self._timestamp,
                )
            )
            self._timestamp += 1

    def _choose_region(self, core: int) -> Tuple[int, Optional[int]]:
        """Pick the data region for the next traversal.

        Returns ``(region, code_site)`` where ``code_site`` is the site to
        reuse for a temporal re-visit (None for a fresh traversal).
        """
        profile = self.profile
        rng = self._rng
        recent = self._recent_regions[core]
        if recent and rng.random() < profile.temporal_reuse:
            region, pc_index = recent[rng.randrange(len(recent))]
            return region, pc_index
        return self._zipf_region(rng.random()), None

    def _zipf_region(self, uniform: float) -> int:
        """Map a uniform draw onto a Zipf-skewed region index.

        Uses the bounded-Pareto inverse-CDF approximation
        ``rank = N * u**(1 / (1 - alpha))`` which is exact for ``alpha == 0``
        (uniform) and increasingly head-heavy as ``alpha`` approaches 1.
        """
        profile = self.profile
        n = profile.num_regions
        alpha = min(profile.region_zipf_alpha, 0.99)
        if alpha <= 0.0:
            rank = int(uniform * n)
        else:
            rank = int(n * (uniform ** (1.0 / (1.0 - alpha))))
        return min(rank, n - 1)

    def _advance_code_site(self, core: int) -> int:
        """Return the code-site index for the next traversal of ``core``."""
        profile = self.profile
        self._pc_run_remaining[core] -= 1
        if self._pc_run_remaining[core] <= 0:
            self._current_pc_index[core] = self._rng.randrange(profile.num_code_regions)
            # Geometric-ish run length around pc_locality_run.
            self._pc_run_remaining[core] = 1 + self._rng.randrange(
                2 * profile.pc_locality_run - 1
            )
        return self._current_pc_index[core]

    # ------------------------------------------------------------------ #
    # Access-pattern synthesis
    # ------------------------------------------------------------------ #
    def _canonical_pattern(self, pc_index: int) -> Tuple[int, ...]:
        """The canonical block-offset pattern of a code site.

        Derived deterministically from the code-site index so that the same
        (PC, offset) pair always implies the same footprint -- the property
        the footprint predictor learns and exploits.
        """
        cached = self._pattern_cache.get(pc_index)
        if cached is not None:
            return cached
        profile = self.profile
        blocks = profile.blocks_per_region
        # Per-site density jitters around the profile mean.
        jitter = ((mix64(pc_index * 977 + 13) % 1000) / 1000.0 - 0.5) * 0.3
        density = min(1.0, max(1.0 / blocks, profile.footprint_density + jitter))
        if density >= 0.7:
            # Dense sites are whole-structure scans: they touch the entire
            # region, which is what gives workloads like Web Search their
            # near-perfect footprint predictability.
            offsets = tuple(range(blocks))
            self._pattern_cache[pc_index] = offsets
            return offsets
        target = max(1, round(density * blocks))
        # Half of the sites start their walk at the structure base (block 0),
        # the rest at a site-specific offset.
        if mix64(pc_index * 53 + 29) % 2 == 0:
            start = 0
        else:
            start = mix64(pc_index * 31 + 7) % blocks
        stride_choices = (1, 1, 1, 2, 3)
        stride = stride_choices[mix64(pc_index * 131 + 3) % len(stride_choices)]
        offsets = tuple(sorted({(start + i * stride) % blocks for i in range(target)}))
        self._pattern_cache[pc_index] = offsets
        return offsets

    def _traversal_offsets(self, pc_index: int, region: int) -> List[int]:
        """Apply per-traversal noise to the code site's canonical pattern."""
        profile = self.profile
        rng = self._rng
        noise = profile.footprint_noise
        blocks = profile.blocks_per_region
        pattern = self._canonical_pattern(pc_index)
        offsets = set(pattern)
        if noise > 0.0:
            for offset in pattern:
                if rng.random() < noise:
                    offsets.discard(offset)
            extra_budget = max(1, int(noise * len(pattern)))
            for _ in range(extra_budget):
                if rng.random() < noise:
                    offsets.add(rng.randrange(blocks))
        if not offsets:
            offsets.add(pattern[0])
        # A region traversal visits its blocks in ascending address order, the
        # common pattern for scans and structure walks.
        result = sorted(offsets)
        _ = region  # regions do not currently perturb the pattern
        return result

    def _singleton_offset(self, pc_index: int, region: int) -> int:
        """The single block offset touched by a singleton traversal."""
        blocks = self.profile.blocks_per_region
        return mix64(pc_index * 2654435761 + region) % blocks
