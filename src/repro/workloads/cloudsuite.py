"""Calibrated workload profiles for the paper's evaluation suite.

The parameter choices encode, per workload, the qualitative characterization
the paper gives (Sections IV-D and V) and the predictor-accuracy targets of
Table V:

* **Data Analytics** (MapReduce): pointer-intensive hash-table lookups, the
  *lowest* spatial locality of the suite; differences between designs are
  least pronounced and small pages are preferred.
* **Data Serving** (Cassandra): high, regular spatial locality; best
  footprint-prediction accuracy (~97%).
* **Software Testing** (Cloud9): the least predictable footprints (FP accuracy
  ~82-84%) and the highest overfetch (~20-25%).
* **Web Search** (Nutch): extremely high spatial locality (FP accuracy ~96-99%,
  overfetch <4%).
* **Web Serving** (Olio): moderate locality and accuracy.
* **TPC-H Queries** (MonetDB column store): scan-dominated with a dataset
  exceeding 100 GB; only multi-gigabyte caches provide meaningful hit rates,
  which is why the paper evaluates it at 1-8 GB.

Working-set sizes are the *effective hot* footprints relevant to the evaluated
cache range (the full datasets are 5-20 GB, and >100 GB for TPC-H); they are
chosen so that the capacity-sensitivity trends of Figures 6-8 are reproduced.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import WorkloadProfile


def data_analytics() -> WorkloadProfile:
    """MapReduce-style analytics: poor spatial locality, pointer chasing."""
    return WorkloadProfile(
        name="Data Analytics",
        working_set="3GB",
        num_code_regions=384,
        footprint_density=0.22,
        footprint_noise=0.055,
        singleton_fraction=0.22,
        temporal_reuse=0.22,
        region_zipf_alpha=0.72,
        pc_locality_run=3,
        write_fraction=0.28,
        l2_mpki=18.0,
    )


def data_serving() -> WorkloadProfile:
    """NoSQL data store: dense, highly repeatable footprints."""
    return WorkloadProfile(
        name="Data Serving",
        working_set="4GB",
        num_code_regions=192,
        footprint_density=0.55,
        footprint_noise=0.022,
        singleton_fraction=0.10,
        temporal_reuse=0.10,
        region_zipf_alpha=0.78,
        pc_locality_run=5,
        write_fraction=0.32,
        l2_mpki=55.0,
    )


def software_testing() -> WorkloadProfile:
    """Symbolic-execution testing: irregular, hard-to-predict footprints."""
    return WorkloadProfile(
        name="Software Testing",
        working_set="2.5GB",
        num_code_regions=512,
        footprint_density=0.45,
        footprint_noise=0.14,
        singleton_fraction=0.14,
        temporal_reuse=0.18,
        region_zipf_alpha=0.70,
        pc_locality_run=3,
        write_fraction=0.30,
        l2_mpki=22.0,
    )


def web_search() -> WorkloadProfile:
    """Index search: very high spatial locality, highly repeatable scans."""
    return WorkloadProfile(
        name="Web Search",
        working_set="3GB",
        num_code_regions=128,
        footprint_density=0.78,
        footprint_noise=0.012,
        singleton_fraction=0.06,
        temporal_reuse=0.12,
        region_zipf_alpha=0.76,
        pc_locality_run=6,
        write_fraction=0.12,
        l2_mpki=25.0,
    )


def web_serving() -> WorkloadProfile:
    """Web/PHP serving: moderate locality and moderate predictability."""
    return WorkloadProfile(
        name="Web Serving",
        working_set="2.5GB",
        num_code_regions=320,
        footprint_density=0.50,
        footprint_noise=0.07,
        singleton_fraction=0.12,
        temporal_reuse=0.16,
        region_zipf_alpha=0.74,
        pc_locality_run=4,
        write_fraction=0.25,
        l2_mpki=20.0,
    )


def tpch_queries() -> WorkloadProfile:
    """TPC-H on a column store: scan-dominated, >100 GB dataset.

    The hot set far exceeds small caches, so block-based designs see very few
    hits below multi-gigabyte capacities (Section V-B).
    """
    return WorkloadProfile(
        name="TPC-H Queries",
        working_set="24GB",
        num_code_regions=96,
        footprint_density=0.85,
        footprint_noise=0.10,
        singleton_fraction=0.05,
        temporal_reuse=0.05,
        region_zipf_alpha=0.45,
        pc_locality_run=8,
        write_fraction=0.10,
        l2_mpki=28.0,
    )


#: The five CloudSuite workloads evaluated at 128 MB - 1 GB (Figures 5-7).
CLOUDSUITE_WORKLOADS: List[WorkloadProfile] = [
    data_analytics(),
    data_serving(),
    software_testing(),
    web_search(),
    web_serving(),
]

#: All six workloads, including TPC-H (evaluated at 1-8 GB, Figure 8).
ALL_WORKLOADS: List[WorkloadProfile] = CLOUDSUITE_WORKLOADS + [tpch_queries()]

_BY_NAME: Dict[str, WorkloadProfile] = {w.name: w for w in ALL_WORKLOADS}


def workload_by_name(name: str) -> WorkloadProfile:
    """Look a workload profile up by its paper name (case-insensitive)."""
    for key, profile in _BY_NAME.items():
        if key.lower() == name.lower():
            return profile
    raise KeyError(
        f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
    )
