"""Workload profile: the statistical knobs of a synthetic workload.

A :class:`WorkloadProfile` is a pure description -- the actual access stream
is produced by :class:`repro.workloads.generator.SyntheticWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import parse_size, SizeLike


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one server workload's L2-miss stream.

    Attributes
    ----------
    name:
        Workload name as used in the paper's figures.
    working_set:
        Approximate size of the hot data the workload cycles through.  The
        relationship between this value and the DRAM cache capacity drives
        the capacity sensitivity seen in Figures 6-8.
    num_code_regions:
        Number of distinct (PC) code sites that touch data regions.  Server
        software re-uses a limited set of functions to traverse large data,
        which is the source of the code/footprint correlation.
    footprint_density:
        Average fraction of a 4 KB data region's blocks touched during one
        traversal (0..1].  High density == high spatial locality.
    footprint_noise:
        Probability that an individual block deviates from the code site's
        canonical access pattern on a given traversal.  Higher noise lowers
        footprint-predictor accuracy (e.g. Software Testing).
    singleton_fraction:
        Fraction of traversals that touch exactly one block (singleton pages).
    temporal_reuse:
        Probability that a traversal targets a recently-traversed region
        again (post-L2 temporal locality; low for server workloads).
    region_zipf_alpha:
        Skew of region popularity (0 == uniform).  Popular regions are what a
        small block-based cache can still capture.
    pc_locality_run:
        Average number of consecutive traversals performed by the same code
        site before switching (models loop behaviour; affects way-predictor
        and footprint-table locality).
    write_fraction:
        Fraction of accesses that are writes (dirty evictions downstream).
    l2_mpki:
        L2 misses per kilo-instruction.  Does not influence the generated
        trace itself; the analytic performance model uses it to weigh how
        much memory latency contributes to each workload's execution time
        (Figures 7 and 8).
    """

    name: str
    working_set: SizeLike
    num_code_regions: int = 256
    footprint_density: float = 0.6
    footprint_noise: float = 0.05
    singleton_fraction: float = 0.10
    temporal_reuse: float = 0.15
    region_zipf_alpha: float = 0.6
    pc_locality_run: int = 4
    write_fraction: float = 0.25
    l2_mpki: float = 20.0

    #: Size of the data region a code site traverses (bytes).  Regions are
    #: larger than any evaluated cache page so that both 960 B and 2 KB page
    #: organizations observe the same underlying locality.
    region_size: int = 4096
    block_size: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.footprint_density <= 1.0:
            raise ValueError("footprint_density must be in (0, 1]")
        for field_name in ("footprint_noise", "singleton_fraction",
                           "temporal_reuse", "write_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.num_code_regions <= 0:
            raise ValueError("num_code_regions must be positive")
        if self.pc_locality_run <= 0:
            raise ValueError("pc_locality_run must be positive")
        if self.region_size % self.block_size:
            raise ValueError("region_size must be a multiple of block_size")
        if self.region_zipf_alpha < 0:
            raise ValueError("region_zipf_alpha must be non-negative")
        if self.l2_mpki <= 0:
            raise ValueError("l2_mpki must be positive")

    @property
    def working_set_bytes(self) -> int:
        """Working-set size in bytes."""
        return parse_size(self.working_set)

    @property
    def num_regions(self) -> int:
        """Number of distinct data regions in the working set."""
        return max(1, self.working_set_bytes // self.region_size)

    @property
    def blocks_per_region(self) -> int:
        """Blocks per data region."""
        return self.region_size // self.block_size

    def scaled(self, working_set: SizeLike) -> "WorkloadProfile":
        """A copy of this profile with a different working-set size."""
        from dataclasses import replace

        return replace(self, working_set=working_set)
