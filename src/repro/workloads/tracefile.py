"""External trace files as first-class workloads.

A :class:`TraceFileWorkload` points one experiment cell at an on-disk trace
(any format :mod:`repro.trace.adapters` can read: repro binary/text,
ChampSim-style, CSV, each optionally gzipped) instead of a synthetic
:class:`~repro.workloads.profile.WorkloadProfile`.  This is how real
application traces -- e.g. converted CloudSuite or gem5 dumps -- replay
through the same sweep machinery as the synthetic workloads::

    spec = SweepSpec(
        designs=("unison", "alloy"),
        workloads=("Web Search", "trace:/data/specjbb.rptr"),
        capacities=("1GB",),
    )

The ``l2_mpki`` knob feeds the analytic performance model (trace files carry
no instruction counts); leave the default when only miss ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class TraceFileWorkload:
    """A workload whose access stream is replayed from a trace file.

    Hashable and picklable: sweep executors key their trace caches on it and
    ship it to worker processes.
    """

    path: str
    #: Name reported in results; defaults to the file stem.
    name: str = ""
    #: L2 misses per kilo-instruction assumed by the performance model.
    l2_mpki: float = 20.0
    #: Optional trace format override (an :data:`repro.trace.adapters.FORMATS`
    #: name); empty string = auto-detect.
    format: str = field(default="")

    def __post_init__(self) -> None:
        path = Path(self.path)
        if not path.is_file():
            raise ValueError(f"trace file not found: {self.path}")
        object.__setattr__(self, "path", str(path))
        if not self.name:
            stem = path.name
            for suffix in reversed(path.suffixes):
                stem = stem[: -len(suffix)]
            object.__setattr__(self, "name", stem or path.name)
        if self.l2_mpki <= 0:
            raise ValueError("l2_mpki must be positive")


__all__ = ["TraceFileWorkload"]
