"""The design catalog: every shipped design as a :class:`DesignSpec`.

This module is where the registry gets populated.  The six pre-existing
designs (nine registered names: four Unison variants plus the five
baselines) are re-expressed as canonical component specs; their ``model``
field points at the concrete class so ``make_design`` keeps returning
``UnisonCache``/``AlloyCache``/... instances with their full compatibility
surface, while :meth:`DesignSpec.build_composed` provides the pure-engine
re-expression the composition tests hold bit-identical.

Below them, the *hybrid* designs: new points in the paper's design space
expressible purely from components, with no class of their own --

* ``alloy+footprint`` -- Alloy's direct-mapped single-access TAD hit path
  and MAP-I miss predictor, combined with Footprint-style predicted region
  fetching at 15-block granularity.  "What if Alloy could exploit spatial
  locality?"
* ``unison-nowp`` -- Unison's full organization with way prediction removed:
  the 4-way in-DRAM tag lookup must serialize tag and data reads, isolating
  exactly what the way predictor buys (Section III-A.6's motivation).

Importing this module registers everything; :mod:`repro.sim.factory` imports
it for that side effect.
"""

from __future__ import annotations

from repro.baselines.alloy import AlloyCache
from repro.baselines.footprint import FootprintCache
from repro.baselines.ideal import IdealCache
from repro.baselines.loh_hill import LohHillCache
from repro.baselines.no_cache import NoDramCache
from repro.core.unison import UnisonCache
from repro.dramcache.spec import ComponentSpec, DesignSpec, register_model_class
from repro.sim.registry import DESIGNS

# --------------------------------------------------------------------- #
# Model carriers: the concrete classes the canonical specs construct.
# --------------------------------------------------------------------- #
register_model_class("unison", UnisonCache.from_design_spec)
register_model_class("alloy", AlloyCache.from_design_spec)
register_model_class("footprint", FootprintCache.from_design_spec)
register_model_class("loh_hill", LohHillCache.from_design_spec)
register_model_class("ideal", IdealCache.from_design_spec)
register_model_class("no_cache", NoDramCache.from_design_spec)


def _unison_spec(name: str, description: str, *, blocks_per_page: int,
                 associativity: int) -> DesignSpec:
    """One Unison variant: in-DRAM page tags + way prediction + footprints."""
    return DesignSpec(
        name=name,
        tags=ComponentSpec("dram-page", {
            "blocks_per_page": blocks_per_page,
            "associativity": associativity,
        }),
        hit_predictor=ComponentSpec("way"),
        fetch=ComponentSpec("footprint"),
        description=description,
        supports_associativity=True,
        model="unison",
    )


# --------------------------------------------------------------------- #
# The canonical designs.
# --------------------------------------------------------------------- #
CANONICAL_SPECS = (
    _unison_spec("unison",
                 "960B pages, 4-way, way prediction (the main design point)",
                 blocks_per_page=15, associativity=4),
    _unison_spec("unison-1984", "1984B pages, 4-way",
                 blocks_per_page=31, associativity=4),
    _unison_spec("unison-dm", "960B pages, direct-mapped",
                 blocks_per_page=15, associativity=1),
    _unison_spec("unison-32way",
                 "960B pages, 32-way (Figure 5's associativity sweep)",
                 blocks_per_page=15, associativity=32),
    DesignSpec(
        name="alloy",
        tags=ComponentSpec("direct-mapped"),
        hit_predictor=ComponentSpec("map-i"),
        fetch=ComponentSpec("demand"),
        description="direct-mapped tag-and-data block cache with a "
                    "per-core miss predictor (Qureshi & Loh)",
        model="alloy",
    ),
    DesignSpec(
        name="footprint",
        tags=ComponentSpec("sram-page"),
        fetch=ComponentSpec("footprint"),
        description="2KB pages with footprint prediction and SRAM tags "
                    "whose latency grows with capacity (Jevdjic et al., "
                    "ISCA'13)",
        model="footprint",
    ),
    DesignSpec(
        name="loh_hill",
        tags=ComponentSpec("missmap"),
        fetch=ComponentSpec("demand"),
        description="tags-in-DRAM block cache with a MissMap "
                    "(Loh & Hill, MICRO'11; extension)",
        model="loh_hill",
    ),
    DesignSpec(
        name="ideal",
        tags=ComponentSpec("always-hit"),
        description="100% hit rate, zero tag overhead -- the "
                    "latency-optimized reference point of Figs. 7-8",
        model="ideal",
    ),
    DesignSpec(
        name="no_cache",
        tags=ComponentSpec("no-cache"),
        writeback=ComponentSpec("none"),
        description="no stacked-DRAM cache; every request goes "
                    "off-chip (the speedup baseline)",
        model="no_cache",
    ),
)

# --------------------------------------------------------------------- #
# Hybrid designs: new component combinations, pure engine builds.
# --------------------------------------------------------------------- #
HYBRID_SPECS = (
    DesignSpec(
        name="alloy+footprint",
        tags=ComponentSpec("direct-mapped", {"page_blocks": 15}),
        hit_predictor=ComponentSpec("map-i"),
        fetch=ComponentSpec("footprint"),
        description="Alloy's single-access TAD hit path + MAP-I, fetching "
                    "predicted 15-block footprints into direct-mapped "
                    "frames (hybrid)",
    ),
    DesignSpec(
        name="unison-nowp",
        tags=ComponentSpec("dram-page", {
            "blocks_per_page": 15,
            "associativity": 4,
            "hit_path": "serialized",
        }),
        fetch=ComponentSpec("footprint"),
        description="Unison without way prediction: 4-way in-DRAM tags "
                    "with serialized tag-then-data hits (hybrid ablation)",
        supports_associativity=True,
    ),
)


for _spec in CANONICAL_SPECS + HYBRID_SPECS:
    DESIGNS.register_spec(_spec)


__all__ = ["CANONICAL_SPECS", "HYBRID_SPECS"]
