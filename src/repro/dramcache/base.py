"""Abstract interface of a die-stacked DRAM cache design.

Every design (Unison, Alloy, Footprint, Ideal, NoCache) consumes the same
request stream -- :class:`repro.trace.record.MemoryAccess` records, i.e. the
L2-miss stream -- and reports per-access outcomes through the same
:class:`DramCacheAccessResult`, so the experiment harness, the performance
model and the benchmark suite treat all designs uniformly.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.dramcache.stats import DramCacheStats
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess

#: Version of the model layer's *simulated behaviour* (designs, components,
#: device timing).  Bump this whenever a change alters what any design
#: computes for a given trace -- the on-disk warm-state checkpoint store
#: (:mod:`repro.sampling.checkpoints`) folds it into every key, so stale
#: checkpoints pickled by older model code are invalidated instead of
#: silently reused.  The design/component *composition* is keyed separately
#: (the registry entry token); this constant covers implementation changes
#: the composition cannot see, playing the role ``GENERATOR_VERSION`` plays
#: for the trace store.
MODEL_BEHAVIOR_VERSION = 1


@dataclass(frozen=True)
class StateSnapshot:
    """A design's warm state, frozen at one point of a replay.

    Produced by :meth:`DramCacheModel.snapshot_state` and consumed by
    :meth:`DramCacheModel.restore_state`.  The payload maps attribute names
    to deep copies of the design's mutable components -- tag/frame arrays,
    replacement state, predictor tables (footprint, way, singleton, miss),
    statistics, and the DRAM device models with their timing state -- so one
    warm checkpoint can seed arbitrarily many downstream measurement windows
    (the checkpointed-sampling workflow of :mod:`repro.sampling`).  Restoring
    deep-copies again, leaving the snapshot reusable.
    """

    design_name: str
    state: Dict[str, object]


@dataclass(frozen=True)
class DramCacheAccessResult:
    """Outcome of one DRAM-cache access."""

    hit: bool
    #: Latency of the access in CPU cycles, measured at the DRAM cache
    #: controller (excludes the L1/L2/interconnect portion, which the
    #: performance model adds uniformly for all designs).
    latency_cycles: int
    #: 64-byte blocks fetched from off-chip memory as a consequence of this
    #: access (demand block + any speculatively fetched footprint blocks).
    offchip_blocks_fetched: int = 0
    #: Dirty blocks written back off-chip as a consequence of this access.
    offchip_blocks_written: int = 0


class DramCacheModel(abc.ABC):
    """Base class for all DRAM cache designs.

    Subclasses implement :meth:`_service_request`; the public :meth:`access`
    wrapper advances the model's clock in a *closed-loop* fashion -- the next
    request is issued one inter-arrival gap after the previous one completes.
    This keeps the DRAM timing model in its unloaded-latency regime (the
    regime the paper's latency arguments are about) instead of accumulating
    unbounded queueing backlog when a trace is replayed back-to-back.
    """

    #: Short machine-readable design name, overridden by subclasses.
    design_name: str = "base"

    #: Mutable attributes captured by :meth:`snapshot_state`.  Subclasses
    #: declare *their own additions* (tag arrays, predictor tables, ...);
    #: declarations accumulate across the class hierarchy, so this base list
    #: of the universally-shared state is inherited by every design.
    _STATE_ATTRS: "tuple[str, ...]" = ("_now", "cache_stats", "memory",
                                       "stacked")

    def __init__(self, capacity_bytes: int, stacked: StackedDram = None,
                 memory: MainMemory = None,
                 interarrival_cycles: int = 6) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.stacked = stacked if stacked is not None else StackedDram()
        self.memory = memory if memory is not None else MainMemory()
        self.cache_stats = DramCacheStats(name=self.design_name)
        self._interarrival = max(1, interarrival_cycles)
        self._now = 0

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Service one request at time ``self._now`` and return its outcome."""

    def access(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Service one request, advancing the closed-loop clock."""
        self._now += self._interarrival
        result = self._service_request(request)
        self._now += max(0, result.latency_cycles)
        return result

    def run(self, requests: Iterable[MemoryAccess]) -> DramCacheStats:
        """Service a whole request stream and return the statistics record."""
        for request in requests:
            self.access(request)
        return self.cache_stats

    def warm_up(self, requests: Iterable[MemoryAccess]) -> None:
        """Service requests, then discard the statistics gathered while doing so."""
        for request in requests:
            self.access(request)
        self.reset_stats()

    def warm_up_array(self, accesses) -> str:
        """Warm with a record array (or records) via the batch engine.

        Dispatches to the fused batch kernels of :mod:`repro.engine` when
        this design's composition is covered and batch warming is enabled
        (``REPRO_BATCH`` / ``--batch-warming``), falling back to the scalar
        :meth:`warm_up` otherwise.  The post-warming state is bit-identical
        either way; returns ``"batch"`` or ``"scalar"`` naming the engine
        that ran.
        """
        from repro.engine import warm_design

        return warm_design(self, accesses)

    def reset_stats(self) -> None:
        """Reset statistics without touching cache contents (warm-up boundary)."""
        self.cache_stats.reset()

    # ------------------------------------------------------------------ #
    # Snapshot/restore of warm state (checkpointed sampling)
    # ------------------------------------------------------------------ #
    @classmethod
    def _snapshot_attrs(cls) -> "tuple[str, ...]":
        """Every ``_STATE_ATTRS`` declaration along the class hierarchy."""
        attrs = []
        for klass in reversed(cls.__mro__):
            for name in vars(klass).get("_STATE_ATTRS", ()):
                if name not in attrs:
                    attrs.append(name)
        return tuple(attrs)

    def snapshot_state(self) -> StateSnapshot:
        """Freeze the design's warm state (contents, predictors, timing).

        The snapshot is independent of the live model: continuing to replay
        accesses never disturbs it, and it can seed any number of
        :meth:`restore_state` calls.
        """
        return StateSnapshot(
            design_name=self.design_name,
            state={name: copy.deepcopy(getattr(self, name))
                   for name in self._snapshot_attrs()},
        )

    def restore_state(self, snapshot: StateSnapshot) -> None:
        """Rewind the design to a previously captured snapshot."""
        if snapshot.design_name != self.design_name:
            raise ValueError(
                f"snapshot of design {snapshot.design_name!r} cannot "
                f"restore a {self.design_name!r} model"
            )
        expected = set(self._snapshot_attrs())
        if set(snapshot.state) != expected:
            raise ValueError(
                f"snapshot state keys {sorted(snapshot.state)} do not match "
                f"this design's state attributes {sorted(expected)}"
            )
        for name, value in snapshot.state.items():
            setattr(self, name, copy.deepcopy(value))

    # ------------------------------------------------------------------ #
    @property
    def miss_ratio(self) -> float:
        """Convenience accessor for the measured miss ratio."""
        return self.cache_stats.miss_ratio

    def extra_metrics(self) -> Dict[str, float]:
        """Design-specific metrics beyond the uniform cache statistics.

        Keys that match an :class:`repro.sim.experiment.ExperimentResult`
        metric field (e.g. ``footprint_accuracy``) populate that field; any
        other key lands in ``ExperimentResult.extra``.  The base design has
        none; predictor-equipped designs override this.
        """
        return {}

    def stats(self) -> StatGroup:
        """Design statistics plus the underlying device statistics."""
        group = StatGroup(self.design_name)
        group.merge_child(self.cache_stats.stats())
        group.merge_child(self.memory.stats())
        group.merge_child(self.stacked.stats())
        return group

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Human-readable one-line description."""
        from repro.utils.units import format_size

        return f"{self.design_name}({format_size(self.capacity_bytes)})"
