"""Policy components of a DRAM cache design.

The paper's contribution is explicitly compositional: Unison Cache is built
from parts its baselines already contain (Loh-Hill's tags-in-DRAM, Alloy's
single-access hit path, Footprint Cache's footprint prediction at page
granularity).  This module factors the monolithic ``_service_request`` bodies
of the design classes into four small policy roles, each with a handful of
interchangeable implementations:

* :class:`TagOrganization` -- owns the array layout, block/page placement,
  device-access latencies, and the allocation/eviction mechanics.  Variants:
  in-DRAM set-associative page tags (Unison), SRAM set-associative page tags
  (Footprint Cache), direct-mapped tag-and-data blocks (Alloy), set-per-row
  blocks behind an SRAM MissMap (Loh-Hill), plus the always-hit and no-cache
  reference organizations.
* :class:`HitPredictor` -- modulates the lookup: nothing, a page-granular way
  predictor (Unison), or a MAP-I style per-core miss predictor (Alloy).
* :class:`FetchPolicy` -- decides which blocks an allocation brings on chip:
  the demand block only, the whole page, or a predicted footprint with
  singleton bypass and eviction-time learning.
* :class:`WritebackPolicy` -- how dirty data leaves the cache.
* :class:`ReplacementComponent` -- which victim a set-associative
  organization evicts: LRU (the paper's policy, the default), deterministic
  random, or 2-bit SRRIP.  The component is a per-set state factory; the
  policies it makes live inside the tag organization, so replacement state
  snapshots/checkpoints through the existing ``tags`` machinery.

Components are deliberately *device-free*: they hold only their own mutable
state (tag arrays, predictor tables) and receive the engine -- a
:class:`repro.dramcache.composed.ComposedDramCache` -- as an argument on
every call.  That keeps them independently deep-copyable, which is what lets
the engine fold component state into the accumulated ``_STATE_ATTRS``
snapshot mechanism unchanged.

Each role has a registry (:data:`TAG_ORGANIZATIONS`, :data:`HIT_PREDICTORS`,
:data:`FETCH_POLICIES`, :data:`WRITEBACK_POLICIES`,
:data:`REPLACEMENT_POLICIES`) mapping a *kind* name to a factory, so a
:class:`repro.dramcache.spec.DesignSpec` can name its parts declaratively --
and downstream code can register new variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    RripPolicy,
)
from repro.config.cache_configs import (
    AlloyCacheConfig,
    FOOTPRINT_TABLE_ENTRIES,
    FootprintCacheConfig,
    SINGLETON_TABLE_ENTRIES,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
    way_predictor_index_bits_for_capacity,
)
from repro.core.row_layout import UnisonRowLayout
from repro.predictors.footprint import FootprintPredictor
from repro.predictors.miss import MissPredictor
from repro.predictors.singleton import SingletonTable
from repro.predictors.way import WayPredictor
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess
from repro.utils.bitvector import BitVector
from repro.utils.residue import ResidueMapper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.composed import ComposedDramCache
    from repro.sim.registry import DesignBuildContext


# --------------------------------------------------------------------- #
# Engine <-> component value objects
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Lookup:
    """Where a request landed in the tag organization (no devices touched)."""

    #: Page number in the organization's page geometry (== block address for
    #: block-granular organizations with one block per page).
    page: int
    set_index: int
    #: Block offset within the page (0 for block-granular organizations).
    offset: int
    #: Way the page/block resides in, or -1 when absent.
    way: int
    #: The requested block's data is present (a hit).
    block_hit: bool
    #: The enclosing frame is resident (page organizations may have the page
    #: without the block -- the footprint-underprediction path).
    page_hit: bool


@dataclass(frozen=True)
class HitPrediction:
    """What the hit predictor contributed to this access."""

    #: Cycles the predictor lookup adds to every access it filters.
    latency_cycles: int = 0
    #: The access is predicted to miss (MAP-I style): the off-chip request is
    #: issued in parallel with -- or instead of -- the cache lookup.
    predicted_miss: bool = False
    #: Predicted way, or ``None`` when no way prediction is in play.
    way: Optional[int] = None
    #: Penalty paid when ``way`` turns out wrong.
    mispredict_penalty: int = 0


#: A no-op prediction shared by every component that has nothing to say.
NO_PREDICTION = HitPrediction()


@dataclass(frozen=True)
class FetchDecision:
    """What the fetch policy wants brought on chip for a trigger miss."""

    #: Blocks of the page to fetch (always includes the trigger block).
    footprint: Optional[BitVector] = None
    #: Forward the block without allocating (singleton bypass).
    bypass: bool = False
    #: The footprint came from a trained history entry.
    from_history: bool = False
    #: On a bypass: remember the page in the singleton table.
    note_singleton: bool = False


@dataclass(frozen=True)
class AllocationOutcome:
    """What a trigger-miss allocation cost."""

    offchip_latency: int
    blocks_fetched: int
    blocks_written: int


# --------------------------------------------------------------------- #
# Component registries
# --------------------------------------------------------------------- #
class ComponentRegistry:
    """Kind -> factory registry for one policy role."""

    def __init__(self, role: str) -> None:
        self.role = role
        self._factories: Dict[str, Callable] = {}

    def register(self, kind: str, factory: Callable, *,
                 replace: bool = False) -> Callable:
        key = kind.lower()
        if not replace and key in self._factories:
            raise ValueError(
                f"{self.role} component {kind!r} is already registered"
            )
        self._factories[key] = factory
        return factory

    def resolve(self, kind: str) -> Callable:
        factory = self._factories.get(kind.lower())
        if factory is None:
            raise ValueError(
                f"unknown {self.role} component {kind!r}; "
                f"options: {sorted(self._factories)}"
            )
        return factory

    def kinds(self) -> "tuple[str, ...]":
        return tuple(self._factories)

    def __contains__(self, kind: object) -> bool:
        return isinstance(kind, str) and kind.lower() in self._factories


#: Tag-organization factories: ``factory(context, **params) -> TagOrganization``.
TAG_ORGANIZATIONS = ComponentRegistry("tag organization")
#: Hit-predictor factories: ``factory(context, tags, **params) -> HitPredictor``.
HIT_PREDICTORS = ComponentRegistry("hit predictor")
#: Fetch-policy factories: ``factory(context, tags, **params) -> FetchPolicy``.
FETCH_POLICIES = ComponentRegistry("fetch policy")
#: Writeback-policy factories: ``factory(context, tags, **params) -> WritebackPolicy``.
WRITEBACK_POLICIES = ComponentRegistry("writeback policy")
#: Replacement-policy factories: ``factory(context, tags, **params) -> ReplacementComponent``.
REPLACEMENT_POLICIES = ComponentRegistry("replacement policy")


class CachePolicyComponent:
    """Base for all policy components: hooks the engine calls uniformly.

    Components never store a reference to the engine or its device models;
    every method receives the engine explicitly.  This keeps a component a
    self-contained bag of mutable state that ``copy.deepcopy`` (the
    :class:`~repro.dramcache.base.StateSnapshot` mechanism) and ``pickle``
    (the on-disk checkpoint store) both handle without dragging the devices
    along twice.
    """

    #: Kind name the component registers under (reports/``repro designs``).
    kind: str = ""

    def reset_stats(self) -> None:
        """Forget measurement counters; learned state persists."""

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        """Metrics folded into :meth:`DramCacheModel.extra_metrics`."""
        return {}

    def stats_children(self) -> List[StatGroup]:
        """Stat groups merged into the design's :meth:`stats` output."""
        return []

    def contribute_stats(self, group: StatGroup) -> None:
        """Scalars set directly on the design's stat group."""


# --------------------------------------------------------------------- #
# Writeback policies
# --------------------------------------------------------------------- #
class WritebackPolicy(CachePolicyComponent):
    """How dirty blocks leave the cache at eviction time."""

    def writeback_block(self, engine: "ComposedDramCache", block: int) -> int:
        raise NotImplementedError

    def writeback_blocks(self, engine: "ComposedDramCache",
                         blocks: List[int]) -> int:
        raise NotImplementedError


class WritebackDirtyPolicy(WritebackPolicy):
    """Write dirty blocks off chip when their frame is evicted (default)."""

    kind = "dirty"

    def writeback_block(self, engine: "ComposedDramCache", block: int) -> int:
        engine.memory.write_block(block, engine._now)
        engine.cache_stats.offchip_writeback_blocks += 1
        return 1

    def writeback_blocks(self, engine: "ComposedDramCache",
                         blocks: List[int]) -> int:
        if not blocks:
            return 0
        engine.memory.write_blocks(blocks, engine._now)
        engine.cache_stats.offchip_writeback_blocks += len(blocks)
        return len(blocks)


class DropDirtyPolicy(WritebackPolicy):
    """Discard dirty data on eviction (reference/ablation variant)."""

    kind = "none"

    def writeback_block(self, engine: "ComposedDramCache", block: int) -> int:
        return 0

    def writeback_blocks(self, engine: "ComposedDramCache",
                         blocks: List[int]) -> int:
        return 0


def _parameterless(role: str, kind: str, component_class):
    """A factory for components that take no parameters.

    Rejects stray params instead of swallowing them, so a typo'd spec
    parameter fails at build time on every component kind, not only the
    keyword-signature factories.
    """

    def factory(context, tags, **params):
        if params:
            raise ValueError(
                f"{role} component {kind!r} takes no parameters; "
                f"got {sorted(params)}"
            )
        return component_class()

    return factory


WRITEBACK_POLICIES.register(
    "dirty", _parameterless("writeback policy", "dirty",
                            WritebackDirtyPolicy))
WRITEBACK_POLICIES.register(
    "none", _parameterless("writeback policy", "none", DropDirtyPolicy))


# --------------------------------------------------------------------- #
# Replacement policies (the fifth component role)
# --------------------------------------------------------------------- #
class ReplacementComponent(CachePolicyComponent):
    """How a set-associative organization chooses eviction victims.

    The component itself is a *per-set state factory*: the tag organization
    calls :meth:`make_set_policy` once per set at construction (through
    :meth:`TagOrganization.apply_replacement`), and the resulting
    :class:`~repro.cache.replacement.ReplacementPolicy` objects live inside
    the organization's ``lru`` list -- so replacement state keeps riding the
    existing ``tags`` snapshot/checkpoint machinery unchanged.
    """

    def make_set_policy(self, associativity: int,
                        set_index: int) -> ReplacementPolicy:
        raise NotImplementedError


class LruReplacement(ReplacementComponent):
    """Least-recently-used (the paper's page replacement; the default)."""

    kind = "lru"

    def make_set_policy(self, associativity: int,
                        set_index: int) -> ReplacementPolicy:
        return LruPolicy(associativity)


class RandomReplacement(ReplacementComponent):
    """Random victims from a deterministic per-set generator.

    Each set's generator is seeded from ``(seed, set_index)`` so results
    are reproducible and independent of the order sets are constructed in.
    """

    kind = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def make_set_policy(self, associativity: int,
                        set_index: int) -> ReplacementPolicy:
        return RandomPolicy(associativity,
                            seed=self.seed * 1000003 + set_index)


class RripReplacement(ReplacementComponent):
    """Static RRIP (2-bit SRRIP) victims."""

    kind = "rrip"

    def make_set_policy(self, associativity: int,
                        set_index: int) -> ReplacementPolicy:
        return RripPolicy(associativity)


def _build_random_replacement(context, tags, seed: int = 0,
                              ) -> RandomReplacement:
    return RandomReplacement(seed=seed)


REPLACEMENT_POLICIES.register(
    "lru", _parameterless("replacement policy", "lru", LruReplacement))
REPLACEMENT_POLICIES.register("random", _build_random_replacement)
REPLACEMENT_POLICIES.register(
    "rrip", _parameterless("replacement policy", "rrip", RripReplacement))


# --------------------------------------------------------------------- #
# Hit predictors
# --------------------------------------------------------------------- #
class HitPredictor(CachePolicyComponent):
    """Per-access prediction that modulates the lookup path."""

    def observe(self, engine: "ComposedDramCache", request: MemoryAccess,
                lookup: Lookup) -> HitPrediction:
        raise NotImplementedError


class NoHitPrediction(HitPredictor):
    """No prediction: the organization's natural lookup path is used."""

    kind = "none"

    def observe(self, engine: "ComposedDramCache", request: MemoryAccess,
                lookup: Lookup) -> HitPrediction:
        return NO_PREDICTION


class OracleWayPrediction(NoHitPrediction):
    """Way prediction degenerated to perfect knowledge.

    A direct-mapped organization (or an ablation that removes the
    predictor) knows the way without predicting; behaviourally identical
    to :class:`NoHitPrediction`, but it keeps reporting the
    ``way_prediction_accuracy`` metric as 1.0 -- matching what the legacy
    designs always published for these configurations.
    """

    kind = "oracle-way"

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        return {"way_prediction_accuracy": 1.0}


class DisabledMissPrediction(NoHitPrediction):
    """MAP-I prediction switched off, metrics still published as zeros."""

    kind = "no-map-i"

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        return {
            "miss_prediction_accuracy": 0.0,
            "miss_predictor_overfetch": 0.0,
        }


class WayPredictionPolicy(HitPredictor):
    """Unison's page-granular way predictor (Section III-A.6).

    Records every access to a resident frame (the controller reads the
    predicted way's block *in unison* with the tags) and reports the way it
    would have read, plus the penalty a misprediction costs.
    """

    kind = "way"

    def __init__(self, predictor: WayPredictor,
                 mispredict_penalty_cycles: int = 12) -> None:
        self.predictor = predictor
        self.mispredict_penalty_cycles = mispredict_penalty_cycles

    def observe(self, engine: "ComposedDramCache", request: MemoryAccess,
                lookup: Lookup) -> HitPrediction:
        if not lookup.page_hit:
            return NO_PREDICTION
        correct = self.predictor.record(lookup.page, lookup.way)
        way = (lookup.way if correct
               else (lookup.way + 1) % self.predictor.associativity)
        return HitPrediction(
            way=way, mispredict_penalty=self.mispredict_penalty_cycles
        )

    def reset_stats(self) -> None:
        self.predictor.reset_stats()

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        return {"way_prediction_accuracy": self.predictor.accuracy.value}

    def stats_children(self) -> List[StatGroup]:
        return [self.predictor.stats()]


class MissPredictionPolicy(HitPredictor):
    """Alloy's MAP-I style per-core miss predictor (Section II-A).

    Every access pays the predictor's (small) latency; predicted misses skip
    the in-cache lookup and go off chip immediately, at the price of wasted
    off-chip fetches when the prediction is wrong.
    """

    kind = "map-i"

    def __init__(self, predictor: MissPredictor,
                 latency_cycles: int = 1) -> None:
        self.predictor = predictor
        self.latency_cycles = latency_cycles

    def observe(self, engine: "ComposedDramCache", request: MemoryAccess,
                lookup: Lookup) -> HitPrediction:
        predicted_miss = self.predictor.record(
            request.core_id, request.pc, was_miss=not lookup.block_hit
        )
        return HitPrediction(
            latency_cycles=self.latency_cycles, predicted_miss=predicted_miss
        )

    def reset_stats(self) -> None:
        self.predictor.reset_stats()

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        hits = engine.cache_stats.hits
        return {
            "miss_prediction_accuracy": self.predictor.miss_identification.value,
            "miss_predictor_overfetch": (
                self.predictor.false_misses / hits if hits else 0.0
            ),
        }

    def stats_children(self) -> List[StatGroup]:
        return [self.predictor.stats()]


def _build_way_predictor(context: "DesignBuildContext", tags,
                         index_bits: Optional[int] = None,
                         mispredict_penalty_cycles: Optional[int] = None,
                         ) -> HitPredictor:
    associativity = getattr(tags, "associativity", 1)
    if associativity <= 1:
        # A direct-mapped organization knows the way; prediction degenerates
        # to the plain lookup path (matches the legacy use_way_prediction
        # gating) while still reporting perfect accuracy.
        return OracleWayPrediction()
    if index_bits is None:
        # The predictor is sized for the *paper* capacity (Section IV).
        index_bits = way_predictor_index_bits_for_capacity(
            context.paper_capacity_bytes)
    if mispredict_penalty_cycles is None:
        mispredict_penalty_cycles = getattr(
            tags, "way_mispredict_penalty_cycles", 12)
    return WayPredictionPolicy(
        WayPredictor(index_bits=index_bits, associativity=associativity),
        mispredict_penalty_cycles=mispredict_penalty_cycles,
    )


def _build_miss_predictor(context: "DesignBuildContext", tags,
                          entries_per_core: int = 256,
                          latency_cycles: int = 1) -> MissPredictionPolicy:
    return MissPredictionPolicy(
        MissPredictor(num_cores=context.num_cores,
                      entries_per_core=entries_per_core),
        latency_cycles=latency_cycles,
    )


HIT_PREDICTORS.register(
    "none", _parameterless("hit predictor", "none", NoHitPrediction))
HIT_PREDICTORS.register("way", _build_way_predictor)
HIT_PREDICTORS.register("map-i", _build_miss_predictor)


# --------------------------------------------------------------------- #
# Fetch policies
# --------------------------------------------------------------------- #
class FetchPolicy(CachePolicyComponent):
    """Which blocks a trigger-miss allocation brings on chip."""

    def plan(self, engine: "ComposedDramCache", request: MemoryAccess,
             lookup: Lookup) -> FetchDecision:
        raise NotImplementedError

    def on_bypass(self, engine: "ComposedDramCache", request: MemoryAccess,
                  lookup: Lookup, decision: FetchDecision) -> None:
        """Bookkeeping after the engine serviced a bypassed miss."""

    def learn_eviction(self, trigger_pc: int, trigger_offset: int,
                       demanded: BitVector, predicted: BitVector,
                       from_history: bool) -> None:
        """Eviction-time training with the frame's observed footprint."""


class DemandBlockFetch(FetchPolicy):
    """Fetch only the block that missed (Alloy / Loh-Hill behaviour)."""

    kind = "demand"

    def plan(self, engine: "ComposedDramCache", request: MemoryAccess,
             lookup: Lookup) -> FetchDecision:
        width = engine.tags.blocks_per_page
        return FetchDecision(
            footprint=BitVector.from_indices(width, [lookup.offset])
        )


class FullPageFetch(FetchPolicy):
    """Fetch the whole page on a trigger miss (classic page-based cache)."""

    kind = "full-page"

    def plan(self, engine: "ComposedDramCache", request: MemoryAccess,
             lookup: Lookup) -> FetchDecision:
        return FetchDecision(footprint=BitVector.ones(engine.tags.blocks_per_page))


class FootprintFetch(FetchPolicy):
    """Footprint-predicted fetching with singleton bypass (Section III-A).

    Owns the footprint history table and the singleton table; learns at
    eviction time from the frame's demanded-block vector (the tag
    organization calls :meth:`learn_eviction` while evicting).
    """

    kind = "footprint"

    def __init__(self, predictor: FootprintPredictor,
                 singleton_table: SingletonTable) -> None:
        self.predictor = predictor
        self.singleton_table = singleton_table

    def plan(self, engine: "ComposedDramCache", request: MemoryAccess,
             lookup: Lookup) -> FetchDecision:
        # A prior singleton bypass of this page may be contradicted by this
        # access; the singleton table corrects the history table if so.
        correction = self.singleton_table.record_access(lookup.page,
                                                        lookup.offset)
        if correction is not None:
            trigger_pc, trigger_offset, observed = correction
            self.predictor.update(trigger_pc, trigger_offset, observed)

        prediction = self.predictor.predict(request.pc, lookup.offset)
        if prediction.is_singleton and prediction.from_history:
            return FetchDecision(
                bypass=True,
                from_history=True,
                note_singleton=correction is None,
            )
        footprint = prediction.footprint.copy()
        footprint.set(lookup.offset)
        return FetchDecision(
            footprint=footprint, from_history=prediction.from_history
        )

    def on_bypass(self, engine: "ComposedDramCache", request: MemoryAccess,
                  lookup: Lookup, decision: FetchDecision) -> None:
        if decision.note_singleton:
            self.singleton_table.insert(lookup.page, request.pc, lookup.offset)

    def learn_eviction(self, trigger_pc: int, trigger_offset: int,
                       demanded: BitVector, predicted: BitVector,
                       from_history: bool) -> None:
        actual = demanded.copy()
        if not actual.any():
            actual.set(trigger_offset)
        self.predictor.update(trigger_pc, trigger_offset, actual)
        self.predictor.record_outcome(predicted, actual,
                                      from_history=from_history)

    def reset_stats(self) -> None:
        self.predictor.reset_stats()

    def extra_metrics(self, engine: "ComposedDramCache") -> Dict[str, float]:
        return {
            "footprint_accuracy": self.predictor.accuracy_ratio,
            "footprint_overfetch": self.predictor.overfetch_ratio,
        }

    def stats_children(self) -> List[StatGroup]:
        return [self.predictor.stats(), self.singleton_table.stats()]


def _build_footprint_fetch(context, tags,
                           table_entries: int = FOOTPRINT_TABLE_ENTRIES,
                           singleton_entries: int = SINGLETON_TABLE_ENTRIES,
                           ) -> FootprintFetch:
    blocks = tags.blocks_per_page
    return FootprintFetch(
        FootprintPredictor(blocks_per_page=blocks, num_entries=table_entries),
        SingletonTable(num_entries=singleton_entries, blocks_per_page=blocks),
    )


FETCH_POLICIES.register(
    "demand", _parameterless("fetch policy", "demand", DemandBlockFetch))
FETCH_POLICIES.register(
    "full-page", _parameterless("fetch policy", "full-page", FullPageFetch))
FETCH_POLICIES.register("footprint", _build_footprint_fetch)


# --------------------------------------------------------------------- #
# Tag organizations
# --------------------------------------------------------------------- #
@dataclass
class PageFrame:
    """One way of one set of a page-based organization."""

    valid: bool = False
    page_number: int = -1
    #: Blocks present in the cache (fetched by the footprint or on demand).
    vbits: BitVector = field(default_factory=lambda: BitVector(15))
    #: Blocks written by the CPU while resident.
    dbits: BitVector = field(default_factory=lambda: BitVector(15))
    #: Blocks actually demanded by the CPU while resident (the true footprint).
    demanded: BitVector = field(default_factory=lambda: BitVector(15))
    #: Footprint the fetch policy brought in at allocation.
    predicted: BitVector = field(default_factory=lambda: BitVector(15))
    trigger_pc: int = 0
    trigger_offset: int = 0
    #: Whether the fetched footprint came from a trained history entry.
    predicted_from_history: bool = False


class TagOrganization(CachePolicyComponent):
    """Array layout, placement, lookup/allocation mechanics, and latencies."""

    #: Block granularity of the fetch-policy page view (1 == block-based).
    blocks_per_page: int = 1
    #: Ways per set (1 == direct-mapped).
    associativity: int = 1
    capacity_bytes: int = 0

    # -- replacement --------------------------------------------------- #
    def apply_replacement(self, replacement: ReplacementComponent) -> None:
        """Install per-set replacement state from the replacement component.

        Organizations without a victim choice (direct-mapped, always-hit,
        no-cache) accept only the default ``lru`` component: any other kind
        would silently change nothing, so it fails loudly at build time
        instead.
        """
        if replacement.kind != "lru":
            raise ValueError(
                f"tag organization {self.kind!r} has no per-set replacement "
                f"choice; only the default 'lru' replacement component is "
                f"valid (got {replacement.kind!r})"
            )

    # -- placement ----------------------------------------------------- #
    def probe(self, request: MemoryAccess) -> Lookup:
        raise NotImplementedError

    # -- hit path ------------------------------------------------------ #
    def touch(self, engine: "ComposedDramCache", request: MemoryAccess,
              lookup: Lookup) -> None:
        """Bookkeeping on any access to a resident frame."""

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        raise NotImplementedError

    def on_hit_write(self, engine: "ComposedDramCache",
                     request: MemoryAccess, lookup: Lookup) -> None:
        """Device write + dirty bookkeeping for a write hit."""

    # -- miss path ----------------------------------------------------- #
    def miss_lookup_latency(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            pred: HitPrediction) -> int:
        """Cycles spent discovering the miss (may read the in-DRAM tags)."""
        return 0

    def fill_block(self, engine: "ComposedDramCache", request: MemoryAccess,
                   lookup: Lookup) -> None:
        """Install the demand block into an already-resident frame."""
        raise NotImplementedError

    def allocate(self, engine: "ComposedDramCache", request: MemoryAccess,
                 lookup: Lookup, decision: FetchDecision) -> AllocationOutcome:
        """Evict a victim, fetch the decided footprint, install the frame."""
        raise NotImplementedError


class _SetAssocPageTags(TagOrganization):
    """Shared mechanics of the set-associative page organizations.

    Subclasses provide the device-latency model (in-DRAM vs SRAM tags) and
    the row-layout writes; placement, LRU replacement, footprint bookkeeping
    and eviction-time training are identical.
    """

    def __init__(self, num_sets: int, associativity: int,
                 blocks_per_page: int, capacity_bytes: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity
        self.blocks_per_page = blocks_per_page
        self.capacity_bytes = capacity_bytes
        self.frames: List[List[PageFrame]] = [
            [self._new_frame() for _ in range(associativity)]
            for _ in range(num_sets)
        ]
        self.lru: List[ReplacementPolicy] = [
            LruPolicy(associativity) for _ in range(num_sets)
        ]

    def apply_replacement(self, replacement: ReplacementComponent) -> None:
        self.lru = [
            replacement.make_set_policy(self.associativity, set_index)
            for set_index in range(self.num_sets)
        ]

    def _new_frame(self) -> PageFrame:
        blocks = self.blocks_per_page
        return PageFrame(
            vbits=BitVector(blocks),
            dbits=BitVector(blocks),
            demanded=BitVector(blocks),
            predicted=BitVector(blocks),
        )

    def _find_way(self, set_index: int, page: int) -> int:
        for way, frame in enumerate(self.frames[set_index]):
            if frame.valid and frame.page_number == page:
                return way
        return -1

    def _locate(self, block_address: int) -> "tuple[int, int, int]":
        """(page, set_index, offset) for a block address."""
        raise NotImplementedError

    def probe(self, request: MemoryAccess) -> Lookup:
        page, set_index, offset = self._locate(request.block_address)
        way = self._find_way(set_index, page)
        block_hit = way >= 0 and self.frames[set_index][way].vbits.get(offset)
        return Lookup(page=page, set_index=set_index, offset=offset, way=way,
                      block_hit=block_hit, page_hit=way >= 0)

    def touch(self, engine: "ComposedDramCache", request: MemoryAccess,
              lookup: Lookup) -> None:
        frame = self.frames[lookup.set_index][lookup.way]
        frame.demanded.set(lookup.offset)
        if request.is_write:
            frame.dbits.set(lookup.offset)
        self.lru[lookup.set_index].on_access(lookup.way)

    def fill_block(self, engine: "ComposedDramCache", request: MemoryAccess,
                   lookup: Lookup) -> None:
        frame = self.frames[lookup.set_index][lookup.way]
        frame.vbits.set(lookup.offset)
        self._write_block_device(engine, lookup.set_index, lookup.way,
                                 lookup.offset)

    # -- device hooks subclasses fill in ------------------------------- #
    def _write_block_device(self, engine: "ComposedDramCache", set_index: int,
                            way: int, offset: int) -> None:
        raise NotImplementedError

    def _read_eviction_metadata(self, engine: "ComposedDramCache",
                                set_index: int, way: int) -> None:
        """Read the (PC, offset) pair from the row (in-DRAM tags only)."""

    def _fill_frame_device(self, engine: "ComposedDramCache", set_index: int,
                           way: int, offsets: List[int]) -> None:
        raise NotImplementedError

    def _count_conflict_eviction(self, engine: "ComposedDramCache") -> None:
        """Organizations that attribute evictions to conflicts count here."""

    # -- allocation/eviction ------------------------------------------- #
    def _evict(self, engine: "ComposedDramCache", set_index: int,
               way: int) -> int:
        frame = self.frames[set_index][way]
        if not frame.valid:
            return 0
        engine.cache_stats.pages_evicted += 1
        self._count_conflict_eviction(engine)
        self._read_eviction_metadata(engine, set_index, way)
        engine.fetch.learn_eviction(
            frame.trigger_pc, frame.trigger_offset, frame.demanded,
            frame.predicted, frame.predicted_from_history,
        )
        dirty_offsets = frame.dbits.intersection(frame.vbits).indices()
        written = 0
        if dirty_offsets:
            base_block = frame.page_number * self.blocks_per_page
            written = engine.writeback.writeback_blocks(
                engine, [base_block + o for o in dirty_offsets]
            )
        frame.valid = False
        frame.page_number = -1
        return written

    def allocate(self, engine: "ComposedDramCache", request: MemoryAccess,
                 lookup: Lookup, decision: FetchDecision) -> AllocationOutcome:
        set_index = lookup.set_index
        victim_way = self.lru[set_index].victim(
            [frame.valid for frame in self.frames[set_index]]
        )
        written = self._evict(engine, set_index, victim_way)

        footprint = decision.footprint
        fetch_offsets = footprint.indices()
        base_block = lookup.page * self.blocks_per_page
        fetch_blocks = [base_block + o for o in fetch_offsets]
        offchip_latency = engine.memory.fetch_blocks(fetch_blocks, engine._now)
        engine.cache_stats.offchip_demand_blocks += 1
        engine.cache_stats.offchip_prefetch_blocks += len(fetch_blocks) - 1

        frame = self.frames[set_index][victim_way]
        frame.valid = True
        frame.page_number = lookup.page
        frame.vbits = footprint.copy()
        frame.dbits = BitVector(self.blocks_per_page)
        frame.demanded = BitVector.from_indices(self.blocks_per_page,
                                                [lookup.offset])
        frame.predicted = footprint.copy()
        frame.predicted_from_history = decision.from_history
        frame.trigger_pc = request.pc
        frame.trigger_offset = lookup.offset
        if request.is_write:
            frame.dbits.set(lookup.offset)
        self.lru[set_index].on_fill(victim_way)
        engine.cache_stats.pages_allocated += 1

        self._fill_frame_device(engine, set_index, victim_way, fetch_offsets)
        return AllocationOutcome(
            offchip_latency=offchip_latency,
            blocks_fetched=len(fetch_blocks),
            blocks_written=written,
        )


class DramPageTags(_SetAssocPageTags):
    """Unison's organization: tags embedded in the DRAM rows (Figure 2).

    The tag burst and the (way-predicted) data block are read *in unison* --
    two back-to-back, overlapped reads to the same row -- so a hit costs one
    DRAM access plus the tag-transfer overhead.  ``hit_path="serialized"``
    models the same organization without way knowledge: the tag read must
    complete before the data read is issued (the ``unison-nowp`` hybrid).
    """

    kind = "dram-page"

    def __init__(self, config: UnisonCacheConfig,
                 hit_path: str = "overlapped") -> None:
        config.validate()
        if hit_path not in ("overlapped", "serialized"):
            raise ValueError(
                f"hit_path must be 'overlapped' or 'serialized', "
                f"got {hit_path!r}"
            )
        super().__init__(
            num_sets=config.num_sets,
            associativity=config.associativity,
            blocks_per_page=config.blocks_per_page,
            capacity_bytes=config.capacity_bytes,
        )
        self.config = config
        self.hit_path = hit_path
        self.layout = UnisonRowLayout(config)
        self.mapper = ResidueMapper(
            blocks_per_page=config.blocks_per_page,
            num_sets=config.num_sets,
        )

    @property
    def way_mispredict_penalty_cycles(self) -> int:
        return self.config.way_mispredict_penalty_cycles

    def _locate(self, block_address: int) -> "tuple[int, int, int]":
        location = self.mapper.locate(block_address)
        return (location.page_number, location.set_index,
                location.block_offset)

    # -- latency mechanics --------------------------------------------- #
    def _tag_frame(self, set_index: int) -> int:
        """Frame whose row holds the set's tag metadata (the set's first way)."""
        return self.layout.frame_index(set_index, 0)

    def _tag_read(self, engine: "ComposedDramCache", set_index: int) -> int:
        tag_frame = self._tag_frame(set_index)
        result = engine.stacked.read(
            self.layout.frame_row(tag_frame),
            self.layout.presence_metadata_offset(tag_frame),
            self.layout.presence_bytes_per_set,
            engine._now,
        )
        return result.latency_cpu_cycles

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        read_way = pred.way if pred.way is not None else lookup.way
        tag_latency = self._tag_read(engine, lookup.set_index)
        data_frame = self.layout.frame_index(lookup.set_index, read_way)
        data_result = engine.stacked.read_block(
            self.layout.frame_row(data_frame),
            self.layout.block_offset(data_frame, lookup.offset),
            engine._now,
        )
        if self.hit_path == "serialized":
            # No way knowledge: the tag read resolves the way before the data
            # read can be issued, so the two latencies add (Loh-Hill style).
            latency = tag_latency + data_result.latency_cpu_cycles
        else:
            # The tag burst goes first and the data read follows back-to-back
            # in the same open row: the pair costs a single row access plus
            # the tag-transfer overhead (Section III-A.6).
            latency = max(tag_latency, data_result.latency_cpu_cycles)
        latency += self.config.tag_read_overhead_cycles
        if pred.way is not None and pred.way != lookup.way:
            # Misprediction: the correct way is re-read from the now-open row
            # buffer (cheap, Section III-A.6).
            latency += pred.mispredict_penalty
        return latency

    def on_hit_write(self, engine: "ComposedDramCache",
                     request: MemoryAccess, lookup: Lookup) -> None:
        self._write_block_device(engine, lookup.set_index, lookup.way,
                                 lookup.offset)

    def miss_lookup_latency(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            pred: HitPrediction) -> int:
        """Discovering a miss requires reading the tags from DRAM."""
        return (self._tag_read(engine, lookup.set_index)
                + self.config.tag_read_overhead_cycles)

    # -- device hooks --------------------------------------------------- #
    def _write_block_device(self, engine: "ComposedDramCache", set_index: int,
                            way: int, offset: int) -> None:
        frame_id = self.layout.frame_index(set_index, way)
        engine.stacked.write(
            self.layout.frame_row(frame_id),
            self.layout.block_offset(frame_id, offset),
            self.config.block_size,
            engine._now,
        )

    def _read_eviction_metadata(self, engine: "ComposedDramCache",
                                set_index: int, way: int) -> None:
        # The (PC, offset) pair and bit vectors are read from the row (off
        # the critical path) to train the footprint predictor.
        frame_id = self.layout.frame_index(set_index, way)
        engine.stacked.read(
            self.layout.frame_row(frame_id),
            self.layout.other_metadata_offset(frame_id),
            self.layout.pc_offset_bytes_per_page,
            engine._now,
        )

    def _fill_frame_device(self, engine: "ComposedDramCache", set_index: int,
                           way: int, offsets: List[int]) -> None:
        frame_id = self.layout.frame_index(set_index, way)
        row = self.layout.frame_row(frame_id)
        engine.stacked.fill_blocks(
            row,
            [self.layout.block_offset(frame_id, o) for o in offsets],
            engine._now,
        )
        engine.stacked.write(
            row,
            self.layout.presence_metadata_offset(frame_id),
            self.layout.presence_bytes_per_page,
            engine._now,
        )

    def _count_conflict_eviction(self, engine: "ComposedDramCache") -> None:
        engine.cache_stats.conflict_evictions += 1


class SramPageTags(_SetAssocPageTags):
    """Footprint Cache's organization: SRAM tags, page-granular DRAM data.

    Every access pays the capacity-dependent SRAM tag latency (Table IV);
    data blocks live packed page-by-page in the stacked DRAM rows.
    """

    kind = "sram-page"

    def __init__(self, config: FootprintCacheConfig,
                 tag_latency_cycles: Optional[int] = None) -> None:
        config.validate()
        associativity = min(config.associativity, max(1, config.num_pages))
        super().__init__(
            num_sets=config.num_sets,
            associativity=associativity,
            blocks_per_page=config.blocks_per_page,
            capacity_bytes=config.capacity_bytes,
        )
        self.config = config
        self.tag_latency_cycles = (
            tag_latency_cycles
            if tag_latency_cycles is not None
            else config.tag_array.lookup_latency_cycles
        )
        self.pages_per_row = max(1, config.row_buffer_size // config.page_size)

    def _locate(self, block_address: int) -> "tuple[int, int, int]":
        page = block_address // self.blocks_per_page
        offset = block_address % self.blocks_per_page
        return page, page % self.num_sets, offset

    def _row_of(self, set_index: int, way: int) -> "tuple[int, int]":
        frame_id = set_index * self.associativity + way
        row = frame_id // self.pages_per_row
        slot = frame_id % self.pages_per_row
        return row, slot * self.config.page_size

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        row, page_base = self._row_of(lookup.set_index, lookup.way)
        data = engine.stacked.read(
            row, page_base + lookup.offset * self.config.block_size,
            self.config.block_size, engine._now,
        )
        return self.tag_latency_cycles + data.latency_cpu_cycles

    def on_hit_write(self, engine: "ComposedDramCache",
                     request: MemoryAccess, lookup: Lookup) -> None:
        self._write_block_device(engine, lookup.set_index, lookup.way,
                                 lookup.offset)

    def miss_lookup_latency(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            pred: HitPrediction) -> int:
        """The SRAM lookup resolves hit/miss; no DRAM access needed."""
        return self.tag_latency_cycles

    def _write_block_device(self, engine: "ComposedDramCache", set_index: int,
                            way: int, offset: int) -> None:
        row, page_base = self._row_of(set_index, way)
        engine.stacked.write(
            row, page_base + offset * self.config.block_size,
            self.config.block_size, engine._now,
        )

    def _fill_frame_device(self, engine: "ComposedDramCache", set_index: int,
                           way: int, offsets: List[int]) -> None:
        row, page_base = self._row_of(set_index, way)
        engine.stacked.fill_blocks(
            row,
            [page_base + o * self.config.block_size for o in offsets],
            engine._now,
        )


class DirectMappedBlockTags(TagOrganization):
    """Alloy's organization: direct-mapped tag-and-data (TAD) blocks.

    A hit streams the whole 72-byte TAD in one DRAM access.  With
    ``page_blocks > 1`` the organization keeps its per-block placement but
    presents a multi-block page view to the fetch policy, installing each
    fetched block into its own direct-mapped frame -- the ``alloy+footprint``
    hybrid.  A small region observer then reconstructs per-page demanded
    footprints so eviction-time learning still works without page frames.
    """

    kind = "direct-mapped"

    def __init__(self, config: AlloyCacheConfig, page_blocks: int = 1,
                 region_observer_entries: int = 4096) -> None:
        config.validate()
        if page_blocks < 1:
            raise ValueError("page_blocks must be positive")
        self.config = config
        self.blocks_per_page = page_blocks
        self.associativity = 1
        self.capacity_bytes = config.capacity_bytes
        self.num_blocks = config.num_blocks
        # Direct-mapped arrays: tag per frame (-1 == invalid) and dirty flag.
        self.tag_array: List[int] = [-1] * self.num_blocks
        self.dirty: List[bool] = [False] * self.num_blocks
        # Region observer (page_blocks > 1 only): page -> observed footprint,
        # an LRU-bounded stand-in for the page frame's demanded vector
        # (insertion-ordered dict; demands re-insert at the back).
        self.region_observer_entries = region_observer_entries
        self._regions: "Dict[int, tuple[int, int, BitVector, BitVector, bool]]" = {}

    # -- placement ------------------------------------------------------ #
    def _frame_of(self, block_address: int) -> int:
        return block_address % self.num_blocks

    def _tag_of(self, block_address: int) -> int:
        return block_address // self.num_blocks

    def _row_of_frame(self, frame: int) -> "tuple[int, int]":
        row = frame // self.config.blocks_per_row
        slot = frame % self.config.blocks_per_row
        return row, slot * self.config.tad_bytes

    def probe(self, request: MemoryAccess) -> Lookup:
        block = request.block_address
        frame = self._frame_of(block)
        hit = self.tag_array[frame] == self._tag_of(block)
        return Lookup(
            page=block // self.blocks_per_page,
            set_index=frame,
            offset=block % self.blocks_per_page,
            way=0 if hit else -1,
            block_hit=hit,
            page_hit=hit,
        )

    # -- hit path -------------------------------------------------------- #
    def touch(self, engine: "ComposedDramCache", request: MemoryAccess,
              lookup: Lookup) -> None:
        self._observe_demand(lookup)

    def _tad_read(self, engine: "ComposedDramCache", frame: int) -> int:
        row, offset = self._row_of_frame(frame)
        result = engine.stacked.read(row, offset, self.config.tad_bytes,
                                     engine._now)
        return result.latency_cpu_cycles

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        return self._tad_read(engine, lookup.set_index)

    def on_hit_write(self, engine: "ComposedDramCache",
                     request: MemoryAccess, lookup: Lookup) -> None:
        frame = lookup.set_index
        row, offset = self._row_of_frame(frame)
        engine.stacked.write(row, offset, self.config.tad_bytes, engine._now)
        self.dirty[frame] = True

    def miss_lookup_latency(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            pred: HitPrediction) -> int:
        if pred.predicted_miss:
            # Correctly predicted miss: the off-chip request is issued
            # immediately, hiding the DRAM-cache lookup entirely.
            return 0
        return self._tad_read(engine, lookup.set_index)

    # -- region observer (footprint-fetch hybrids) ----------------------- #
    def _observe_demand(self, lookup: Lookup) -> None:
        if self.blocks_per_page <= 1:
            return
        entry = self._regions.pop(lookup.page, None)
        if entry is not None:
            entry[2].set(lookup.offset)
            # Re-insert at the back: a still-demanded region stays resident
            # in the observer (true LRU, matching the page frames it
            # stands in for).
            self._regions[lookup.page] = entry

    def _observe_allocation(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            decision: FetchDecision) -> None:
        if self.blocks_per_page <= 1:
            return
        stale = self._regions.pop(lookup.page, None)
        if stale is None and len(self._regions) >= self.region_observer_entries:
            # Capacity eviction: the least-recently-demanded region learns.
            lru_page = next(iter(self._regions))
            stale = self._regions.pop(lru_page)
        if stale is not None:
            engine.fetch.learn_eviction(stale[0], stale[1], stale[2],
                                        stale[3], stale[4])
        demanded = BitVector.from_indices(self.blocks_per_page,
                                          [lookup.offset])
        self._regions[lookup.page] = (
            request.pc, lookup.offset, demanded,
            decision.footprint.copy(), decision.from_history,
        )

    # -- miss path ------------------------------------------------------- #
    def fill_block(self, engine: "ComposedDramCache", request: MemoryAccess,
                   lookup: Lookup) -> None:  # pragma: no cover - unreachable
        raise RuntimeError(
            "a direct-mapped block organization has no partial pages"
        )

    def _install(self, engine: "ComposedDramCache", block: int,
                 dirty: bool) -> int:
        """Install one fetched block; returns dirty blocks written back."""
        frame = self._frame_of(block)
        tag = self._tag_of(block)
        written = 0
        if self.tag_array[frame] >= 0 and self.dirty[frame]:
            victim_block = self.tag_array[frame] * self.num_blocks + frame
            written = engine.writeback.writeback_block(engine, victim_block)
        if self.tag_array[frame] >= 0:
            engine.cache_stats.pages_evicted += 1
        self.tag_array[frame] = tag
        self.dirty[frame] = dirty
        engine.cache_stats.pages_allocated += 1
        row, offset = self._row_of_frame(frame)
        engine.stacked.write(row, offset, self.config.tad_bytes, engine._now)
        return written

    def allocate(self, engine: "ComposedDramCache", request: MemoryAccess,
                 lookup: Lookup, decision: FetchDecision) -> AllocationOutcome:
        offsets = decision.footprint.indices()
        base_block = lookup.page * self.blocks_per_page
        if len(offsets) == 1:
            offchip = engine.memory.read_block(request.block_address,
                                               engine._now)
            engine.cache_stats.offchip_demand_blocks += 1
            written = self._install(engine, request.block_address,
                                    request.is_write)
            return AllocationOutcome(offchip_latency=offchip,
                                     blocks_fetched=1, blocks_written=written)
        # Multi-block footprint (hybrid): fetch the region, install each
        # block into its own direct-mapped frame.
        fetch_blocks = [base_block + o for o in offsets]
        offchip = engine.memory.fetch_blocks(fetch_blocks, engine._now)
        engine.cache_stats.offchip_demand_blocks += 1
        engine.cache_stats.offchip_prefetch_blocks += len(fetch_blocks) - 1
        written = 0
        for block in fetch_blocks:
            written += self._install(
                engine, block,
                dirty=request.is_write and block == request.block_address,
            )
        self._observe_allocation(engine, request, lookup, decision)
        return AllocationOutcome(offchip_latency=offchip,
                                 blocks_fetched=len(fetch_blocks),
                                 blocks_written=written)


class MissMapBlockTags(TagOrganization):
    """Loh-Hill's organization: set-per-row tags-in-DRAM behind a MissMap.

    Each DRAM row forms one set whose first block slots hold the tags for
    the remaining data blocks; a hit pays MissMap latency plus the
    serialized tag-then-data reads (the row stays open, so the data read is
    a row-buffer hit).  The on-chip MissMap lets true misses skip the
    in-DRAM tag lookup entirely.
    """

    kind = "missmap"

    #: Bytes of tag metadata kept per data block (tag + state bits).
    TAG_ENTRY_BYTES = 6

    def __init__(self, capacity_bytes: int, row_buffer_size: int = 8 * 1024,
                 block_size: int = 64,
                 missmap_latency_cycles: int = 8) -> None:
        if row_buffer_size % block_size:
            raise ValueError("row_buffer_size must be a multiple of block_size")
        self.capacity_bytes = capacity_bytes
        self.blocks_per_page = 1
        self.block_size = block_size
        self.row_buffer_size = row_buffer_size
        self.missmap_latency_cycles = missmap_latency_cycles

        blocks_per_row = row_buffer_size // block_size
        # Reserve the smallest number of block slots whose bytes can hold
        # the tag entries of all remaining slots (2 KB rows -> 3 tag + 29
        # data blocks, exactly the original design).
        tag_blocks = 1
        while ((blocks_per_row - tag_blocks) * self.TAG_ENTRY_BYTES
               > tag_blocks * block_size):
            tag_blocks += 1
        self.tag_blocks_per_row = tag_blocks
        #: Data blocks per set.
        self.associativity = blocks_per_row - tag_blocks
        self.num_sets = capacity_bytes // row_buffer_size
        if self.num_sets < 1:
            raise ValueError("capacity must hold at least one DRAM row")

        self.tag_array: List[List[int]] = [
            [-1] * self.associativity for _ in range(self.num_sets)
        ]
        self.dirty: List[List[bool]] = [
            [False] * self.associativity for _ in range(self.num_sets)
        ]
        self.lru: List[ReplacementPolicy] = [
            LruPolicy(self.associativity) for _ in range(self.num_sets)
        ]
        # The MissMap: presence bits for every block the cache may hold.
        self.missmap: Dict[int, bool] = {}

    def apply_replacement(self, replacement: ReplacementComponent) -> None:
        self.lru = [
            replacement.make_set_policy(self.associativity, set_index)
            for set_index in range(self.num_sets)
        ]

    def _locate(self, block_address: int) -> "tuple[int, int]":
        return block_address % self.num_sets, block_address // self.num_sets

    def _find_way(self, set_index: int, tag: int) -> int:
        for way, existing in enumerate(self.tag_array[set_index]):
            if existing == tag:
                return way
        return -1

    def probe(self, request: MemoryAccess) -> Lookup:
        block = request.block_address
        set_index, tag = self._locate(block)
        way = self._find_way(set_index, tag)
        present = self.missmap.get(block, False)
        return Lookup(page=block, set_index=set_index, offset=0, way=way,
                      block_hit=present, page_hit=present)

    def touch(self, engine: "ComposedDramCache", request: MemoryAccess,
              lookup: Lookup) -> None:
        self.lru[lookup.set_index].on_access(max(lookup.way, 0))

    def _tag_read(self, engine: "ComposedDramCache", set_index: int) -> int:
        result = engine.stacked.read(
            set_index, 0, self.tag_blocks_per_row * self.block_size,
            engine._now,
        )
        return result.latency_cpu_cycles

    def _data_read(self, engine: "ComposedDramCache", set_index: int,
                   way: int) -> int:
        offset = (self.tag_blocks_per_row + way) * self.block_size
        result = engine.stacked.read(set_index, offset, self.block_size,
                                     engine._now)
        return result.latency_cpu_cycles

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        # Tag read, then the data read (serialized; the data read hits the
        # open row).
        tag_latency = self._tag_read(engine, lookup.set_index)
        data_latency = self._data_read(engine, lookup.set_index,
                                       max(lookup.way, 0))
        return self.missmap_latency_cycles + tag_latency + data_latency

    def on_hit_write(self, engine: "ComposedDramCache",
                     request: MemoryAccess, lookup: Lookup) -> None:
        self.dirty[lookup.set_index][max(lookup.way, 0)] = True

    def miss_lookup_latency(self, engine: "ComposedDramCache",
                            request: MemoryAccess, lookup: Lookup,
                            pred: HitPrediction) -> int:
        # The MissMap already said "absent": no in-DRAM tag read happens.
        return self.missmap_latency_cycles

    def allocate(self, engine: "ComposedDramCache", request: MemoryAccess,
                 lookup: Lookup, decision: FetchDecision) -> AllocationOutcome:
        offchip = engine.memory.read_block(request.block_address, engine._now)
        engine.cache_stats.offchip_demand_blocks += 1

        set_index = lookup.set_index
        tag = request.block_address // self.num_sets
        written = 0
        victim_way = self.lru[set_index].victim(
            [existing >= 0 for existing in self.tag_array[set_index]]
        )
        victim_tag = self.tag_array[set_index][victim_way]
        if victim_tag >= 0:
            victim_block = victim_tag * self.num_sets + set_index
            self.missmap.pop(victim_block, None)
            if self.dirty[set_index][victim_way]:
                written = engine.writeback.writeback_block(engine,
                                                           victim_block)
            engine.cache_stats.pages_evicted += 1
        self.tag_array[set_index][victim_way] = tag
        self.dirty[set_index][victim_way] = request.is_write
        self.lru[set_index].on_fill(victim_way)
        self.missmap[request.block_address] = True
        engine.cache_stats.pages_allocated += 1
        # Update the in-row tag block and write the data block.
        engine.stacked.write(set_index, 0, self.block_size, engine._now)
        engine.stacked.write(
            set_index,
            (self.tag_blocks_per_row + victim_way) * self.block_size,
            self.block_size, engine._now,
        )
        return AllocationOutcome(offchip_latency=offchip, blocks_fetched=1,
                                 blocks_written=written)

    def contribute_stats(self, group: StatGroup) -> None:
        group.set("missmap_entries", len(self.missmap))


class AlwaysHitTags(TagOrganization):
    """The ideal reference point: every access hits, no tag overhead."""

    kind = "always-hit"

    def __init__(self, capacity_bytes: int, row_buffer_size: int = 8 * 1024,
                 block_size: int = 64) -> None:
        self.capacity_bytes = capacity_bytes
        self.blocks_per_page = 1
        self.associativity = 1
        self.row_buffer_size = row_buffer_size
        self.block_size = block_size

    def probe(self, request: MemoryAccess) -> Lookup:
        return Lookup(page=request.block_address, set_index=0, offset=0,
                      way=0, block_hit=True, page_hit=True)

    def block_hit_latency(self, engine: "ComposedDramCache",
                          request: MemoryAccess, lookup: Lookup,
                          pred: HitPrediction) -> int:
        row = request.address // self.row_buffer_size
        offset = ((request.address % self.row_buffer_size)
                  // self.block_size * self.block_size)
        result = engine.stacked.read(row, offset, self.block_size,
                                     engine._now)
        return result.latency_cpu_cycles


class NoCacheTags(TagOrganization):
    """No stacked-DRAM cache at all: every request goes off chip."""

    kind = "no-cache"

    def __init__(self) -> None:
        self.capacity_bytes = 1
        self.blocks_per_page = 1
        self.associativity = 1

    def probe(self, request: MemoryAccess) -> Lookup:
        return Lookup(page=request.block_address, set_index=0, offset=0,
                      way=-1, block_hit=False, page_hit=False)

    def allocate(self, engine: "ComposedDramCache", request: MemoryAccess,
                 lookup: Lookup, decision: FetchDecision) -> AllocationOutcome:
        if request.is_write:
            latency = engine.memory.write_block(request.block_address,
                                                engine._now)
            engine.cache_stats.offchip_writeback_blocks += 1
            return AllocationOutcome(offchip_latency=latency,
                                     blocks_fetched=0, blocks_written=1)
        latency = engine.memory.read_block(request.block_address, engine._now)
        engine.cache_stats.offchip_demand_blocks += 1
        return AllocationOutcome(offchip_latency=latency, blocks_fetched=1,
                                 blocks_written=0)


# --------------------------------------------------------------------- #
# Tag-organization factories
# --------------------------------------------------------------------- #
def _build_dram_page_tags(context: "DesignBuildContext",
                          blocks_per_page: int = 15,
                          associativity: int = 4,
                          hit_path: str = "overlapped") -> DramPageTags:
    if context.associativity is not None:
        associativity = context.associativity
    # Way prediction is owned by the hit-predictor component, not the tag
    # organization: the config's predictor fields stay at their defaults
    # here (the organization never consults them).
    config = UnisonCacheConfig(
        capacity=context.scaled_capacity_bytes,
        blocks_per_page=blocks_per_page,
        associativity=associativity,
    )
    return DramPageTags(config, hit_path=hit_path)


def _build_sram_page_tags(context: "DesignBuildContext",
                          page_size: int = 2048,
                          associativity: int = 32) -> SramPageTags:
    if context.associativity is not None:
        associativity = context.associativity
    # The SRAM tag latency is dictated by the *paper* capacity (Table IV).
    tag_latency = footprint_tag_array_for_capacity(
        context.paper_capacity_bytes
    ).lookup_latency_cycles
    config = FootprintCacheConfig(
        capacity=context.scaled_capacity_bytes,
        page_size=page_size,
        associativity=associativity,
    )
    return SramPageTags(config, tag_latency_cycles=tag_latency)


def _build_direct_mapped_tags(context: "DesignBuildContext",
                              page_blocks: int = 1,
                              region_observer_entries: int = 4096,
                              ) -> DirectMappedBlockTags:
    return DirectMappedBlockTags(
        AlloyCacheConfig(capacity=context.scaled_capacity_bytes),
        page_blocks=page_blocks,
        region_observer_entries=region_observer_entries,
    )


def _build_missmap_tags(context: "DesignBuildContext",
                        missmap_latency_cycles: int = 8) -> MissMapBlockTags:
    return MissMapBlockTags(
        context.scaled_capacity_bytes,
        missmap_latency_cycles=missmap_latency_cycles,
    )


def _build_always_hit_tags(context: "DesignBuildContext") -> AlwaysHitTags:
    return AlwaysHitTags(context.scaled_capacity_bytes)


def _build_no_cache_tags(context: "DesignBuildContext") -> NoCacheTags:
    return NoCacheTags()


TAG_ORGANIZATIONS.register("dram-page", _build_dram_page_tags)
TAG_ORGANIZATIONS.register("sram-page", _build_sram_page_tags)
TAG_ORGANIZATIONS.register("direct-mapped", _build_direct_mapped_tags)
TAG_ORGANIZATIONS.register("missmap", _build_missmap_tags)
TAG_ORGANIZATIONS.register("always-hit", _build_always_hit_tags)
TAG_ORGANIZATIONS.register("no-cache", _build_no_cache_tags)


__all__ = [
    "AllocationOutcome",
    "AlwaysHitTags",
    "CachePolicyComponent",
    "ComponentRegistry",
    "DemandBlockFetch",
    "DirectMappedBlockTags",
    "DisabledMissPrediction",
    "DramPageTags",
    "DropDirtyPolicy",
    "FETCH_POLICIES",
    "FetchDecision",
    "FetchPolicy",
    "FootprintFetch",
    "FullPageFetch",
    "HIT_PREDICTORS",
    "HitPredictor",
    "HitPrediction",
    "Lookup",
    "LruReplacement",
    "MissMapBlockTags",
    "MissPredictionPolicy",
    "NoCacheTags",
    "NoHitPrediction",
    "OracleWayPrediction",
    "PageFrame",
    "REPLACEMENT_POLICIES",
    "RandomReplacement",
    "ReplacementComponent",
    "RripReplacement",
    "SramPageTags",
    "TAG_ORGANIZATIONS",
    "TagOrganization",
    "WRITEBACK_POLICIES",
    "WayPredictionPolicy",
    "WritebackDirtyPolicy",
    "WritebackPolicy",
]
