"""Common infrastructure for die-stacked DRAM cache designs.

Defines the request/response interface every design implements
(:class:`repro.dramcache.base.DramCacheModel`), the shared statistics record
(:class:`repro.dramcache.stats.DramCacheStats`), and the latency components a
design reports per access.
"""

from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.dramcache.stats import DramCacheStats

__all__ = [
    "DramCacheAccessResult",
    "DramCacheModel",
    "DramCacheStats",
]
