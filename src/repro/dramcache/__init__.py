"""Common infrastructure for die-stacked DRAM cache designs.

Defines the request/response interface every design implements
(:class:`repro.dramcache.base.DramCacheModel`), the shared statistics record
(:class:`repro.dramcache.stats.DramCacheStats`), the policy-component layer
(:mod:`repro.dramcache.components`), the generic composition engine
(:class:`repro.dramcache.composed.ComposedDramCache`), and the declarative
:class:`repro.dramcache.spec.DesignSpec` that names a design as components
plus geometry.  The shipped design catalog -- the canonical six families and
the component-composed hybrids -- lives in :mod:`repro.dramcache.designs`
and registers when :mod:`repro.sim.factory` is imported.
"""

from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.dramcache.components import (
    FETCH_POLICIES,
    FetchPolicy,
    HIT_PREDICTORS,
    HitPredictor,
    TAG_ORGANIZATIONS,
    TagOrganization,
    WRITEBACK_POLICIES,
    WritebackPolicy,
)
from repro.dramcache.composed import ComposedDramCache
from repro.dramcache.spec import ComponentSpec, DesignSpec
from repro.dramcache.stats import DramCacheStats

__all__ = [
    "ComponentSpec",
    "ComposedDramCache",
    "DesignSpec",
    "DramCacheAccessResult",
    "DramCacheModel",
    "DramCacheStats",
    "FETCH_POLICIES",
    "FetchPolicy",
    "HIT_PREDICTORS",
    "HitPredictor",
    "TAG_ORGANIZATIONS",
    "TagOrganization",
    "WRITEBACK_POLICIES",
    "WritebackPolicy",
]
