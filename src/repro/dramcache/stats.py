"""Statistics shared by all DRAM cache designs.

Each design owns one :class:`DramCacheStats` instance and records every access
outcome into it; the experiment harness and the analytic performance model
read only this uniform record, so designs are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.counters import StatGroup


@dataclass
class DramCacheStats:
    """Uniform per-design statistics record."""

    name: str = "dram_cache"

    # Hit/miss behaviour
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0

    # Latency accounting (CPU cycles, summed over accesses)
    total_hit_latency: int = 0
    total_miss_latency: int = 0

    # Off-chip traffic in 64-byte blocks
    offchip_demand_blocks: int = 0      # blocks fetched because they were demanded
    offchip_prefetch_blocks: int = 0    # blocks fetched speculatively (footprints, mispredicted misses)
    offchip_writeback_blocks: int = 0   # dirty blocks written back to memory

    # Allocation behaviour
    pages_allocated: int = 0
    pages_evicted: int = 0
    singleton_bypasses: int = 0
    underprediction_misses: int = 0
    conflict_evictions: int = 0

    # Extra bookkeeping some designs use
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over all accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over all accesses."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def average_hit_latency(self) -> float:
        """Mean hit latency in CPU cycles."""
        if self.hits == 0:
            return 0.0
        return self.total_hit_latency / self.hits

    @property
    def average_miss_latency(self) -> float:
        """Mean miss latency in CPU cycles."""
        if self.misses == 0:
            return 0.0
        return self.total_miss_latency / self.misses

    @property
    def average_access_latency(self) -> float:
        """Mean latency over all accesses."""
        if self.accesses == 0:
            return 0.0
        return (self.total_hit_latency + self.total_miss_latency) / self.accesses

    @property
    def offchip_total_blocks(self) -> int:
        """Total off-chip traffic in blocks."""
        return (self.offchip_demand_blocks + self.offchip_prefetch_blocks
                + self.offchip_writeback_blocks)

    @property
    def offchip_blocks_per_access(self) -> float:
        """Off-chip blocks moved per DRAM-cache access (bandwidth efficiency)."""
        if self.accesses == 0:
            return 0.0
        return self.offchip_total_blocks / self.accesses

    # ------------------------------------------------------------------ #
    def record_hit(self, latency: int, is_write: bool) -> None:
        """Account one hit."""
        self.hits += 1
        self.total_hit_latency += latency
        self._record_type(is_write)

    def record_miss(self, latency: int, is_write: bool) -> None:
        """Account one miss."""
        self.misses += 1
        self.total_miss_latency += latency
        self._record_type(is_write)

    def _record_type(self, is_write: bool) -> None:
        if is_write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1

    def reset(self) -> None:
        """Zero every counter (warm-up boundary); the design keeps its contents."""
        extra_keys = list(self.extra)
        self.__init__(name=self.name)  # type: ignore[misc]
        for key in extra_keys:
            self.extra[key] = 0

    # ------------------------------------------------------------------ #
    def stats(self) -> StatGroup:
        """Flatten into a :class:`StatGroup` for reporting."""
        group = StatGroup(self.name)
        group.set("hits", self.hits)
        group.set("misses", self.misses)
        group.set("accesses", self.accesses)
        group.set("miss_ratio", self.miss_ratio)
        group.set("hit_ratio", self.hit_ratio)
        group.set("avg_hit_latency", self.average_hit_latency)
        group.set("avg_miss_latency", self.average_miss_latency)
        group.set("avg_access_latency", self.average_access_latency)
        group.set("offchip_demand_blocks", self.offchip_demand_blocks)
        group.set("offchip_prefetch_blocks", self.offchip_prefetch_blocks)
        group.set("offchip_writeback_blocks", self.offchip_writeback_blocks)
        group.set("offchip_total_blocks", self.offchip_total_blocks)
        group.set("offchip_blocks_per_access", self.offchip_blocks_per_access)
        group.set("pages_allocated", self.pages_allocated)
        group.set("pages_evicted", self.pages_evicted)
        group.set("singleton_bypasses", self.singleton_bypasses)
        group.set("underprediction_misses", self.underprediction_misses)
        group.set("conflict_evictions", self.conflict_evictions)
        for key, value in self.extra.items():
            group.set(f"extra.{key}", value)
        return group
