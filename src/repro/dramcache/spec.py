"""Declarative DRAM-cache design descriptions.

A :class:`DesignSpec` names a complete design as *components plus geometry*:
which :class:`~repro.dramcache.components.TagOrganization`, which
:class:`~repro.dramcache.components.HitPredictor`, which
:class:`~repro.dramcache.components.FetchPolicy`, which
:class:`~repro.dramcache.components.WritebackPolicy`, each with its
parameters.  Specs are frozen, picklable, order-canonical -- and therefore
hashable into a stable :meth:`DesignSpec.token` that the on-disk checkpoint
store uses for invalidation: change any component or parameter and every
stale warm checkpoint misses.

Specs build through the per-role component registries, so the whole design
space the components span is reachable declaratively::

    spec = DesignSpec(
        name="alloy+footprint",
        tags=ComponentSpec("direct-mapped", {"page_blocks": 15}),
        hit_predictor=ComponentSpec("map-i"),
        fetch=ComponentSpec("footprint"),
    )
    model = spec.build(context)          # a ComposedDramCache

The six pre-existing designs keep their concrete classes (``UnisonCache``
etc. -- now thin compositions themselves); their canonical specs set
``model`` to the class's registered model name so ``make_design("unison")``
still returns a ``UnisonCache`` instance.  :meth:`DesignSpec.build_composed`
always builds the pure generic engine, which the test suite uses to prove
each class and its spec re-expression are bit-identical.

Specs register in the design registry with
:meth:`repro.sim.registry.DesignRegistry.register_spec`;
:func:`repro.sim.factory.make_design` then resolves classes and specs
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.dramcache.components import (
    FETCH_POLICIES,
    HIT_PREDICTORS,
    REPLACEMENT_POLICIES,
    TAG_ORGANIZATIONS,
    WRITEBACK_POLICIES,
)
from repro.dramcache.composed import ComposedDramCache

#: Parameter values a component spec may carry (kept JSON-simple so tokens
#: are stable and specs stay picklable/hashable).
ParamValue = Union[int, float, str, bool]


@dataclass(frozen=True)
class ComponentSpec:
    """One policy component: a registered kind plus its parameters."""

    kind: str
    #: Normalized to a key-sorted tuple of pairs so equal specs hash equal.
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __init__(self, kind: str,
                 params: Union[Mapping[str, ParamValue],
                               Tuple[Tuple[str, ParamValue], ...], None] = None,
                 ) -> None:
        object.__setattr__(self, "kind", kind.lower())
        items = sorted(dict(params or {}).items())
        for key, value in items:
            if not isinstance(value, (int, float, str, bool)):
                raise ValueError(
                    f"component parameter {key}={value!r} must be a plain "
                    f"int/float/str/bool"
                )
        object.__setattr__(self, "params", tuple(items))

    def params_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)

    def token(self) -> str:
        """Canonical text form (feeds the spec hash)."""
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return self.kind if not inner else f"{self.kind}({inner})"


def _coerce_component(value: Union[ComponentSpec, str, Tuple], role: str,
                      ) -> ComponentSpec:
    if isinstance(value, ComponentSpec):
        return value
    if isinstance(value, str):
        return ComponentSpec(value)
    if isinstance(value, tuple) and len(value) == 2:
        return ComponentSpec(value[0], value[1])
    raise ValueError(
        f"{role} must be a ComponentSpec, a kind name, or a (kind, params) "
        f"pair; got {value!r}"
    )


#: Model carriers a spec may name: "composed" is the generic engine; the
#: pre-existing design classes register themselves so their canonical specs
#: keep constructing real ``UnisonCache``/``AlloyCache``/... instances.
MODEL_CLASSES: Dict[str, Callable] = {}


def register_model_class(name: str, builder: Callable, *,
                         replace: bool = False) -> None:
    """Register ``builder(context, spec) -> DramCacheModel`` under ``name``."""
    key = name.lower()
    if not replace and key in MODEL_CLASSES:
        raise ValueError(f"model class {name!r} is already registered")
    MODEL_CLASSES[key] = builder


@dataclass(frozen=True)
class DesignSpec:
    """A complete DRAM-cache design, declared as components + geometry."""

    name: str
    tags: ComponentSpec
    hit_predictor: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("none"))
    fetch: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("demand"))
    writeback: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("dirty"))
    replacement: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("lru"))
    description: str = ""
    #: Whether :func:`make_design` may override the tag associativity.
    supports_associativity: bool = False
    #: Which model carrier builds the instance ("composed" = generic engine).
    model: str = "composed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags",
                           _coerce_component(self.tags, "tags"))
        object.__setattr__(self, "hit_predictor",
                           _coerce_component(self.hit_predictor,
                                             "hit_predictor"))
        object.__setattr__(self, "fetch",
                           _coerce_component(self.fetch, "fetch"))
        object.__setattr__(self, "writeback",
                           _coerce_component(self.writeback, "writeback"))
        object.__setattr__(self, "replacement",
                           _coerce_component(self.replacement, "replacement"))
        # Unknown component kinds fail here, at declaration time, not in the
        # middle of a sweep.
        TAG_ORGANIZATIONS.resolve(self.tags.kind)
        HIT_PREDICTORS.resolve(self.hit_predictor.kind)
        FETCH_POLICIES.resolve(self.fetch.kind)
        WRITEBACK_POLICIES.resolve(self.writeback.kind)
        REPLACEMENT_POLICIES.resolve(self.replacement.kind)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self, context) -> "ComposedDramCache":
        """Build the design for a :class:`DesignBuildContext`."""
        if self.model != "composed":
            builder = MODEL_CLASSES.get(self.model)
            if builder is None:
                raise ValueError(
                    f"design spec {self.name!r} names unknown model "
                    f"{self.model!r}; registered: {sorted(MODEL_CLASSES)}"
                )
            return builder(context, self)
        return self.build_composed(context)

    def build_composed(self, context) -> ComposedDramCache:
        """Build the pure generic engine, regardless of ``model``.

        This is the spec's *re-expression* of a design: for the canonical
        six it must behave bit-identically to the concrete class (the
        composition test suite enforces exactly that).
        """
        tags = TAG_ORGANIZATIONS.resolve(self.tags.kind)(
            context, **self.tags.params_dict())
        hit_predictor = HIT_PREDICTORS.resolve(self.hit_predictor.kind)(
            context, tags, **self.hit_predictor.params_dict())
        fetch = FETCH_POLICIES.resolve(self.fetch.kind)(
            context, tags, **self.fetch.params_dict())
        writeback = WRITEBACK_POLICIES.resolve(self.writeback.kind)(
            context, tags, **self.writeback.params_dict())
        replacement = REPLACEMENT_POLICIES.resolve(self.replacement.kind)(
            context, tags, **self.replacement.params_dict())
        return ComposedDramCache(
            tags=tags,
            hit_predictor=hit_predictor,
            fetch=fetch,
            writeback=writeback,
            replacement=replacement,
            design_name=self.name,
        )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def token(self) -> str:
        """Canonical text identity (checkpoint invalidation, reports).

        Any change to a component kind or parameter changes the token --
        which is the point: on-disk checkpoints key on it, so editing a
        design invalidates its stale warm states instead of reusing them.
        """
        return (f"design:{self.name};model:{self.model};"
                f"tags:{self.tags.token()};"
                f"hit:{self.hit_predictor.token()};"
                f"fetch:{self.fetch.token()};"
                f"wb:{self.writeback.token()};"
                f"repl:{self.replacement.token()}")

    def describe_components(self) -> str:
        """Human-readable component breakdown (``repro designs``)."""
        return (f"tags={self.tags.describe()} "
                f"hit={self.hit_predictor.describe()} "
                f"fetch={self.fetch.describe()} "
                f"wb={self.writeback.describe()} "
                f"repl={self.replacement.describe()}")


def require_components(spec: "DesignSpec", *, tags: "tuple[str, ...]",
                       hit_predictor: "tuple[str, ...]",
                       fetch: "tuple[str, ...]",
                       writeback: "tuple[str, ...]" = ("dirty",),
                       replacement: "tuple[str, ...]" = ("lru",)) -> None:
    """Reject component *kinds* a concrete model class cannot embody.

    A class carrier hard-codes its composition; a spec naming a different
    kind (``model='alloy'`` with ``hit_predictor='none'``, say) would build
    a model that contradicts its own declaration -- and its checkpoint
    token.  Unsupported kinds fail loudly at build time instead.
    """
    for role, kind, allowed in (
        ("tags", spec.tags.kind, tags),
        ("hit_predictor", spec.hit_predictor.kind, hit_predictor),
        ("fetch", spec.fetch.kind, fetch),
        ("writeback", spec.writeback.kind, writeback),
        ("replacement", spec.replacement.kind, replacement),
    ):
        if kind not in allowed:
            raise ValueError(
                f"design spec {spec.name!r}: component {role}={kind!r} is "
                f"not supported by model {spec.model!r} (allowed: "
                f"{sorted(allowed)}); declare the spec with "
                f"model='composed' to use it"
            )


def take_params(component: ComponentSpec, role: str,
                allowed: "tuple[str, ...]") -> Dict[str, ParamValue]:
    """The component's params, rejecting any a model carrier cannot honor.

    The concrete design classes build from their own config objects, so a
    spec parameter they silently ignored would make ``build()`` and
    ``build_composed()`` diverge behaviourally while the spec token claims
    otherwise.  Unknown keys therefore fail loudly, pointing at the pure
    engine as the way to use the full component parameter space.
    """
    params = component.params_dict()
    unknown = sorted(k for k in params if k not in allowed)
    if unknown:
        raise ValueError(
            f"{role} parameters {unknown} are not supported by this "
            f"design's concrete model class (allowed: {sorted(allowed)}); "
            f"declare the spec with model='composed' to use them"
        )
    return params


register_model_class(
    "composed", lambda context, spec: spec.build_composed(context))


__all__ = [
    "ComponentSpec",
    "DesignSpec",
    "MODEL_CLASSES",
    "register_model_class",
    "require_components",
    "take_params",
]
