"""The composed DRAM-cache engine.

:class:`ComposedDramCache` is one generic ``_service_request`` driving five
pluggable policy components (see :mod:`repro.dramcache.components`):

1. the :class:`~repro.dramcache.components.TagOrganization` *probes* where
   the request lands (no devices touched);
2. the :class:`~repro.dramcache.components.HitPredictor` *observes* the
   access -- training itself on the true outcome -- and contributes a latency
   and/or a predicted way or predicted miss;
3. a block hit pays the organization's hit latency (plus any wasted off-chip
   fetch a false miss prediction issued in parallel);
4. a resident page missing the block fetches just that block (the
   footprint-underprediction path);
5. a trigger miss asks the :class:`~repro.dramcache.components.FetchPolicy`
   what to bring on chip -- possibly a bypass -- and the organization
   allocates, evicting through the
   :class:`~repro.dramcache.components.WritebackPolicy`.

All six pre-existing designs (Unison, Alloy, Footprint, Loh-Hill, Ideal,
NoCache) are re-expressed as component sets on this engine -- bit-identically
to their former monolithic ``_service_request`` bodies -- and new hybrids
(e.g. ``alloy+footprint``) are just different component sets, declared with
a :class:`repro.dramcache.spec.DesignSpec`.

6. eviction victims come from the
   :class:`~repro.dramcache.components.ReplacementComponent`-built per-set
   policies living inside the tag organization (LRU by default).

Component state folds into the accumulated ``_STATE_ATTRS`` snapshot
mechanism: the engine declares its five component slots, so
:meth:`~repro.dramcache.base.DramCacheModel.snapshot_state` deep-copies the
components wholesale (they are device-free by construction).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.dramcache.components import (
    DemandBlockFetch,
    FetchPolicy,
    HitPredictor,
    LruReplacement,
    MissPredictionPolicy,
    NoHitPrediction,
    ReplacementComponent,
    TagOrganization,
    WayPredictionPolicy,
    WritebackDirtyPolicy,
    WritebackPolicy,
)
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.way import WayPredictor
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess


class ComposedDramCache(DramCacheModel):
    """A DRAM cache assembled from policy components."""

    design_name = "composed"

    #: Warm state beyond the base's: the component objects themselves (tag
    #: arrays, replacement state, predictor tables all live inside them).
    _STATE_ATTRS = ("tags", "hit_predictor", "fetch", "writeback",
                    "replacement")

    def __init__(self, tags: TagOrganization,
                 hit_predictor: Optional[HitPredictor] = None,
                 fetch: Optional[FetchPolicy] = None,
                 writeback: Optional[WritebackPolicy] = None,
                 replacement: Optional[ReplacementComponent] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 interarrival_cycles: int = 6,
                 design_name: Optional[str] = None) -> None:
        if design_name is not None:
            self.design_name = design_name
        super().__init__(tags.capacity_bytes, stacked, memory,
                         interarrival_cycles=interarrival_cycles)
        self.tags = tags
        self.hit_predictor = hit_predictor or NoHitPrediction()
        self.fetch = fetch or DemandBlockFetch()
        self.writeback = writeback or WritebackDirtyPolicy()
        self.replacement = replacement or LruReplacement()
        # Install the per-set replacement state before any access touches
        # the arrays.  The default LRU component rebuilds exactly the state
        # the organization constructed, so existing designs stay
        # bit-identical; non-default components swap the victim policy in.
        self.tags.apply_replacement(self.replacement)

    # ------------------------------------------------------------------ #
    def _components(self) -> "tuple":
        """The component slots in reporting order (fetch metrics first, to
        match the legacy designs' metric ordering)."""
        return (self.fetch, self.hit_predictor, self.tags, self.writeback,
                self.replacement)

    # ------------------------------------------------------------------ #
    # The one generic service path
    # ------------------------------------------------------------------ #
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        lookup = self.tags.probe(request)
        pred = self.hit_predictor.observe(self, request, lookup)
        if lookup.page_hit:
            self.tags.touch(self, request, lookup)

        if lookup.block_hit:
            latency = (pred.latency_cycles
                       + self.tags.block_hit_latency(self, request, lookup,
                                                     pred))
            extra_fetch = 0
            if pred.predicted_miss:
                # False miss prediction: an unnecessary off-chip fetch was
                # issued in parallel; the data still returns from the cache,
                # but the memory request wastes bandwidth (Section II-A).
                self.memory.read_block(request.block_address, self._now)
                self.cache_stats.offchip_prefetch_blocks += 1
                extra_fetch = 1
            if request.is_write:
                self.tags.on_hit_write(self, request, lookup)
            self.cache_stats.record_hit(latency, request.is_write)
            return DramCacheAccessResult(
                hit=True, latency_cycles=latency,
                offchip_blocks_fetched=extra_fetch,
            )

        if lookup.page_hit:
            # Resident page, absent block (footprint underprediction): only
            # the missing block is brought in; the fetch policy is corrected
            # lazily at eviction through the demanded vector.
            self.cache_stats.underprediction_misses += 1
            lookup_latency = self.tags.miss_lookup_latency(self, request,
                                                           lookup, pred)
            offchip = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
            self.tags.fill_block(self, request, lookup)
            latency = pred.latency_cycles + lookup_latency + offchip
            self.cache_stats.record_miss(latency, request.is_write)
            return DramCacheAccessResult(
                hit=False, latency_cycles=latency, offchip_blocks_fetched=1,
            )

        # Trigger miss.
        lookup_latency = self.tags.miss_lookup_latency(self, request, lookup,
                                                       pred)
        decision = self.fetch.plan(self, request, lookup)
        if decision.bypass:
            # Predicted singleton: forward the block without allocating.
            offchip = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
            self.cache_stats.singleton_bypasses += 1
            self.fetch.on_bypass(self, request, lookup, decision)
            latency = pred.latency_cycles + lookup_latency + offchip
            self.cache_stats.record_miss(latency, request.is_write)
            return DramCacheAccessResult(
                hit=False, latency_cycles=latency, offchip_blocks_fetched=1,
            )

        outcome = self.tags.allocate(self, request, lookup, decision)
        latency = pred.latency_cycles + lookup_latency + outcome.offchip_latency
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False,
            latency_cycles=latency,
            offchip_blocks_fetched=outcome.blocks_fetched,
            offchip_blocks_written=outcome.blocks_written,
        )

    # ------------------------------------------------------------------ #
    # Component-driven reporting
    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Reset cache and component statistics; contents/training persist."""
        super().reset_stats()
        for component in self._components():
            component.reset_stats()

    def extra_metrics(self) -> Dict[str, float]:
        """Union of every component's metrics (predictor accuracies etc.)."""
        metrics: Dict[str, float] = {}
        for component in self._components():
            metrics.update(component.extra_metrics(self))
        return metrics

    def stats(self) -> StatGroup:
        """Design, component, and device statistics."""
        group = super().stats()
        for component in self._components():
            for child in component.stats_children():
                group.merge_child(child)
            component.contribute_stats(group)
        return group

    # ------------------------------------------------------------------ #
    # Compatibility accessors into the components
    # ------------------------------------------------------------------ #
    @property
    def way_predictor(self) -> Optional[WayPredictor]:
        """The way predictor, or ``None`` when way prediction is off."""
        if isinstance(self.hit_predictor, WayPredictionPolicy):
            return self.hit_predictor.predictor
        return None

    @way_predictor.setter
    def way_predictor(self, value: Optional[WayPredictor]) -> None:
        # The ablation benchmarks disable (or swap) the predictor in place:
        # ``design.way_predictor = None`` restores the oracle lookup path.
        if value is None:
            from repro.dramcache.components import OracleWayPrediction

            self.hit_predictor = OracleWayPrediction()
            return
        penalty = getattr(self.tags, "way_mispredict_penalty_cycles", 12)
        self.hit_predictor = WayPredictionPolicy(
            value, mispredict_penalty_cycles=penalty)

    @property
    def miss_predictor(self):
        """The MAP-I miss predictor, or ``None`` when absent."""
        if isinstance(self.hit_predictor, MissPredictionPolicy):
            return self.hit_predictor.predictor
        return None

    @property
    def footprint_predictor(self):
        """The footprint history table (footprint-fetch designs only)."""
        return self.fetch.predictor

    @property
    def singleton_table(self):
        """The singleton table (footprint-fetch designs only)."""
        return self.fetch.singleton_table

    # -- metric properties shared by the design families ----------------- #
    @property
    def way_prediction_accuracy(self) -> float:
        """Measured way-predictor accuracy (Table V's WP row)."""
        predictor = self.way_predictor
        if predictor is None:
            return 1.0
        return predictor.accuracy.value

    @property
    def miss_prediction_accuracy(self) -> float:
        """Fraction of misses correctly identified (Table V)."""
        predictor = self.miss_predictor
        if predictor is None:
            return 0.0
        return predictor.miss_identification.value

    @property
    def miss_predictor_overfetch(self) -> float:
        """Extra off-chip fetches caused by false miss predictions, per hit."""
        predictor = self.miss_predictor
        if predictor is None or self.cache_stats.hits == 0:
            return 0.0
        return predictor.false_misses / self.cache_stats.hits

    @property
    def footprint_accuracy(self) -> float:
        """Measured footprint-predictor accuracy (Table V's FP row)."""
        return self.footprint_predictor.accuracy_ratio

    @property
    def footprint_overfetch(self) -> float:
        """Measured footprint overfetch ratio (Table V)."""
        return self.footprint_predictor.overfetch_ratio

    # ------------------------------------------------------------------ #
    def describe_components(self) -> str:
        """One-line component breakdown (``repro designs``)."""
        return (f"tags={self.tags.kind} "
                f"hit_predictor={self.hit_predictor.kind} "
                f"fetch={self.fetch.kind} writeback={self.writeback.kind} "
                f"replacement={self.replacement.kind}")


__all__ = ["ComposedDramCache"]
