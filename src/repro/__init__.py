"""Unison Cache reproduction library.

A from-scratch, trace-driven Python reproduction of *Unison Cache: A Scalable
and Effective Die-Stacked DRAM Cache* (Jevdjic, Loh, Kaynak, Falsafi --
MICRO 2014), including the Alloy Cache and Footprint Cache baselines, the
DRAM timing and SRAM cache substrates, synthetic server-workload generators,
and the experiment harness that regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import ExperimentRunner, ExperimentConfig, workload_by_name

    runner = ExperimentRunner(ExperimentConfig(scale=256, num_accesses=60_000))
    result = runner.run_design("unison", workload_by_name("Web Search"), "1GB")
    print(result.miss_ratio, result.speedup_vs_no_cache)
"""

from repro.baselines import AlloyCache, FootprintCache, IdealCache, NoDramCache
from repro.config import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    SystemConfig,
    UnisonCacheConfig,
)
from repro.core import UnisonCache, UnisonRowLayout
from repro.sim import (
    DESIGN_NAMES,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    PerformanceModel,
    SamplingRunner,
    make_design,
)
from repro.trace import AccessType, MemoryAccess
from repro.workloads import (
    ALL_WORKLOADS,
    CLOUDSUITE_WORKLOADS,
    SyntheticWorkload,
    WorkloadProfile,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "AlloyCache",
    "FootprintCache",
    "IdealCache",
    "NoDramCache",
    "UnisonCache",
    "UnisonRowLayout",
    "AlloyCacheConfig",
    "FootprintCacheConfig",
    "UnisonCacheConfig",
    "SystemConfig",
    "DESIGN_NAMES",
    "make_design",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "PerformanceModel",
    "SamplingRunner",
    "AccessType",
    "MemoryAccess",
    "WorkloadProfile",
    "SyntheticWorkload",
    "ALL_WORKLOADS",
    "CLOUDSUITE_WORKLOADS",
    "workload_by_name",
    "__version__",
]
