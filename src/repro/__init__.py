"""Unison Cache reproduction library.

A from-scratch, trace-driven Python reproduction of *Unison Cache: A Scalable
and Effective Die-Stacked DRAM Cache* (Jevdjic, Loh, Kaynak, Falsafi --
MICRO 2014), including the Alloy Cache and Footprint Cache baselines, the
DRAM timing and SRAM cache substrates, synthetic server-workload generators,
and a declarative experiment layer that regenerates every table and figure of
the paper's evaluation.

Quickstart -- declare a grid, run it (in parallel, if you like), query and
persist the results::

    from repro import ExperimentConfig, ResultSet, SweepSpec, run_sweep

    spec = SweepSpec(
        designs=("unison", "alloy", "footprint"),
        workloads=("Web Search", "TPC-H Queries"),
        capacities=("512MB", "1GB", "2GB"),
        config=ExperimentConfig(scale=512, num_accesses=60_000),
    )
    results = run_sweep(spec, workers=4)   # ResultSet; workers=1 is serial

    print(results.table())                 # fixed-width summary
    unison = results.filter(design="unison", capacity="1GB")
    print(unison.metric("miss_ratio"))
    results.to_json("sweep.json")          # lossless; also .to_csv(...)
    cached = ResultSet.from_json("sweep.json")

The same sweep is available from the shell: ``python -m repro --designs
unison alloy --capacities 512MB 1GB --jobs 4`` prints the table and exports
JSON.  Designs are pluggable: every family registers a builder with
:func:`repro.sim.registry.register_design`, and anything registered is
immediately usable in specs, sweeps, and the CLI.

Sweeps scale past one process through the durable work queue
(:mod:`repro.queue`): ``SweepExecutor(queue=SweepService()).run(spec)``
plans the grid into idempotent on-disk jobs, survives worker crashes
(``kill -9`` costs only in-flight jobs), and archives every result --
``repro queue submit|work|status|resume`` drive the same machinery from
the shell.

Long traces measure through checkpointed windowed sampling (the paper's
SimFlex-style methodology, :mod:`repro.sampling`) instead of full replay:
add ``sampling=SamplingConfig()`` to a sweep, or use
``repro sample --designs unison alloy`` from the shell.  For one-off trials
the lower-level :class:`ExperimentRunner` remains available::

    from repro import ExperimentRunner, ExperimentConfig, workload_by_name

    runner = ExperimentRunner(ExperimentConfig(scale=256, num_accesses=60_000))
    result = runner.run_design("unison", workload_by_name("Web Search"), "1GB")
"""

from repro.baselines import AlloyCache, FootprintCache, IdealCache, NoDramCache
from repro.config import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    SystemConfig,
    UnisonCacheConfig,
)
from repro.core import UnisonCache, UnisonRowLayout
from repro.queue import ResultArchive, SweepService
from repro.sampling import (
    SampledRun,
    SamplingConfig,
    WindowedSampler,
)
from repro.sim import (
    DESIGN_NAMES,
    DESIGNS,
    DesignRegistry,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    PerformanceModel,
    ResultSet,
    SamplingRunner,
    SweepExecutor,
    SweepSpec,
    make_design,
    register_design,
    run_sweep,
)
from repro.trace import (
    AccessType,
    FileSource,
    MemoryAccess,
    SyntheticSource,
    TraceFormatError,
    TraceSource,
    TraceStore,
)
from repro.workloads import (
    ALL_WORKLOADS,
    CLOUDSUITE_WORKLOADS,
    SyntheticWorkload,
    TraceFileWorkload,
    WorkloadProfile,
    workload_by_name,
)

__version__ = "1.2.0"

__all__ = [
    "AlloyCache",
    "FootprintCache",
    "IdealCache",
    "NoDramCache",
    "UnisonCache",
    "UnisonRowLayout",
    "AlloyCacheConfig",
    "FootprintCacheConfig",
    "UnisonCacheConfig",
    "SystemConfig",
    "DESIGN_NAMES",
    "DESIGNS",
    "DesignRegistry",
    "register_design",
    "make_design",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "SweepSpec",
    "SweepExecutor",
    "SweepService",
    "ResultArchive",
    "run_sweep",
    "ResultSet",
    "PerformanceModel",
    "SampledRun",
    "SamplingConfig",
    "SamplingRunner",
    "WindowedSampler",
    "AccessType",
    "MemoryAccess",
    "TraceFormatError",
    "TraceSource",
    "FileSource",
    "SyntheticSource",
    "TraceStore",
    "WorkloadProfile",
    "SyntheticWorkload",
    "TraceFileWorkload",
    "ALL_WORKLOADS",
    "CLOUDSUITE_WORKLOADS",
    "workload_by_name",
    "__version__",
]
