"""System and cache-design configuration.

The classes here encode the evaluation setup of the paper:

* :class:`repro.config.system.SystemConfig` -- the architectural parameters of
  Table III (16-core scale-out pod, L1/L2 sizes, stacked and off-chip DRAM
  organization and timings).
* :class:`repro.config.cache_configs` -- per-design DRAM cache configurations
  (Unison 960B/1984B pages, Alloy, Footprint 2KB pages) and the Footprint
  Cache SRAM tag-array model of Table IV.
"""

from repro.config.system import (
    CoreConfig,
    DramChannelConfig,
    SramCacheConfig,
    SystemConfig,
)
from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
    FootprintTagArrayModel,
    scaled_capacity,
)

__all__ = [
    "CoreConfig",
    "DramChannelConfig",
    "SramCacheConfig",
    "SystemConfig",
    "AlloyCacheConfig",
    "FootprintCacheConfig",
    "UnisonCacheConfig",
    "footprint_tag_array_for_capacity",
    "FootprintTagArrayModel",
    "scaled_capacity",
]
