"""Architectural system parameters (paper Table III).

The defaults reproduce the evaluated system: a 16-core Scale-Out-Processor
pod with ARM Cortex-A15-like 3-way out-of-order cores at 3 GHz, split 64 KB
L1 caches, a 4 MB 16-way shared L2, one DDR3-1600 off-chip channel, and a
four-channel DDR-like die-stacked DRAM with 8 KB rows and a 128-bit bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import parse_size, SizeLike


@dataclass(frozen=True)
class CoreConfig:
    """A single core of the CMP."""

    frequency_ghz: float = 3.0
    issue_width: int = 3
    #: Average memory-level parallelism the out-of-order core can sustain for
    #: off-chip misses.  Used by the analytic performance model; scale-out
    #: server workloads have modest MLP (the paper's motivation cites their
    #: pointer-intensive, dependent access patterns).
    mlp: float = 2.0
    #: Fraction of dynamic instructions that access memory (loads + stores),
    #: and base IPC in the absence of any L2 miss, both used by the
    #: performance model.
    memory_instruction_fraction: float = 0.30
    base_ipc: float = 1.2


@dataclass(frozen=True)
class SramCacheConfig:
    """Configuration of an SRAM cache level (L1 or L2)."""

    name: str
    size: SizeLike
    associativity: int
    block_size: int = 64
    hit_latency_cycles: int = 2

    @property
    def size_bytes(self) -> int:
        """Capacity in bytes."""
        return parse_size(self.size)

    @property
    def num_blocks(self) -> int:
        """Total number of blocks."""
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_blocks // self.associativity

    def validate(self) -> None:
        """Raise ``ValueError`` if the configuration is not self-consistent."""
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError(f"{self.name}: block_size must be a power of two")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if self.size_bytes % self.block_size:
            raise ValueError(f"{self.name}: size must be a multiple of block_size")
        if self.num_blocks % self.associativity:
            raise ValueError(
                f"{self.name}: number of blocks must be divisible by associativity"
            )


@dataclass(frozen=True)
class DramChannelConfig:
    """Organization and timing of one DRAM channel.

    Timing parameters are in memory-bus cycles and follow the paper's
    Table III for both the off-chip DDR3-1600 channel and the DDR-like
    stacked DRAM channels.
    """

    name: str
    frequency_mhz: float
    num_channels: int
    banks_per_rank: int
    row_buffer_bytes: int
    bus_width_bits: int
    #: DRAM timing parameters (Table III), in DRAM bus cycles.
    t_cas: int = 11
    t_rcd: int = 11
    t_rp: int = 11
    t_ras: int = 28
    t_rc: int = 39
    t_wr: int = 12
    t_wtr: int = 6
    t_rtp: int = 6
    t_rrd: int = 5
    t_faw: int = 24
    burst_length: int = 8

    def validate(self) -> None:
        """Raise ``ValueError`` for nonsensical organizations."""
        if self.num_channels <= 0 or self.banks_per_rank <= 0:
            raise ValueError(f"{self.name}: channels and banks must be positive")
        if self.row_buffer_bytes <= 0 or self.bus_width_bits % 8:
            raise ValueError(f"{self.name}: bad row buffer or bus width")

    @property
    def bus_bytes_per_cycle(self) -> float:
        """Bytes transferred per DRAM bus cycle (double data rate)."""
        return 2 * self.bus_width_bits / 8

    def transfer_cycles(self, num_bytes: int) -> int:
        """Bus cycles needed to transfer ``num_bytes`` (rounded up)."""
        if num_bytes <= 0:
            return 0
        cycles = -(-num_bytes // int(self.bus_bytes_per_cycle))
        return cycles

    def cpu_cycles_per_dram_cycle(self, cpu_frequency_ghz: float) -> float:
        """Conversion factor from DRAM bus cycles to CPU cycles."""
        return (cpu_frequency_ghz * 1000.0) / self.frequency_mhz


def _default_l1() -> SramCacheConfig:
    return SramCacheConfig(
        name="L1D", size="64KB", associativity=4, block_size=64,
        hit_latency_cycles=2,
    )


def _default_l1i() -> SramCacheConfig:
    return SramCacheConfig(
        name="L1I", size="64KB", associativity=4, block_size=64,
        hit_latency_cycles=2,
    )


def _default_l2() -> SramCacheConfig:
    return SramCacheConfig(
        name="L2", size="4MB", associativity=16, block_size=64,
        hit_latency_cycles=13,
    )


def _default_offchip() -> DramChannelConfig:
    return DramChannelConfig(
        name="offchip-ddr3-1600",
        frequency_mhz=800.0,
        num_channels=1,
        banks_per_rank=8,
        row_buffer_bytes=8 * 1024,
        bus_width_bits=64,
    )


def _default_stacked() -> DramChannelConfig:
    return DramChannelConfig(
        name="stacked-dram",
        frequency_mhz=1600.0,
        num_channels=4,
        banks_per_rank=8,
        row_buffer_bytes=8 * 1024,
        bus_width_bits=128,
    )


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration (paper Table III defaults)."""

    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: SramCacheConfig = field(default_factory=_default_l1i)
    l1d: SramCacheConfig = field(default_factory=_default_l1)
    l2: SramCacheConfig = field(default_factory=_default_l2)
    offchip_dram: DramChannelConfig = field(default_factory=_default_offchip)
    stacked_dram: DramChannelConfig = field(default_factory=_default_stacked)
    #: Crossbar (16x4) traversal latency in CPU cycles.
    interconnect_latency_cycles: int = 4
    #: Average off-chip main-memory access latency seen by the L2 miss path
    #: in CPU cycles (queueing included); derived from the DDR3-1600 channel.
    offchip_latency_cycles: int = 220
    #: Average stacked-DRAM access latency (row activation + CAS + transfer)
    #: in CPU cycles for a row-buffer miss; ~60 CPU cycles as cited in
    #: Section V-B ("~60 cycles it takes to access DRAM").
    stacked_dram_latency_cycles: int = 60

    def validate(self) -> None:
        """Validate every nested configuration."""
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        for cache in (self.l1i, self.l1d, self.l2):
            cache.validate()
        self.offchip_dram.validate()
        self.stacked_dram.validate()
