"""Per-design DRAM cache configurations.

Each of the three evaluated designs (Unison Cache, Alloy Cache, Footprint
Cache) has its own configuration dataclass capturing the organizational
parameters from Section IV-C, plus the Footprint Cache SRAM tag-array model of
Table IV that drives its capacity-dependent tag-lookup latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.units import format_size, parse_size, SizeLike

#: Data block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: DRAM row buffer size used throughout the paper (bytes).
ROW_BUFFER_SIZE = 8 * 1024

#: Footprint history table entries (the 144 KB table of Table II) --
#: shared default of Unison Cache, Footprint Cache, and the footprint
#: fetch-policy component.
FOOTPRINT_TABLE_ENTRIES = 16 * 1024

#: Singleton table entries (Section III-A.4), shared like the above.
SINGLETON_TABLE_ENTRIES = 1024


def way_predictor_index_bits_for_capacity(paper_capacity_bytes: int) -> int:
    """The paper's way-predictor sizing rule (Sections III-A.6 and IV).

    "A 2-bit array directly indexed by the 12-bit XOR hash of the page
    address (16-bit XOR for caches above 4GB)" -- sized by the *paper*
    capacity, never the scaled-down simulated one.
    """
    return 16 if paper_capacity_bytes > 4 * 1024 ** 3 else 12


# --------------------------------------------------------------------------- #
# Unison Cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class UnisonCacheConfig:
    """Unison Cache organization (Section IV-C.1 defaults).

    The default is the paper's main design point: four-way set-associative,
    960-byte pages (15 blocks), two sets per 8 KB DRAM row, way prediction
    enabled, footprint prediction parameters inherited from Footprint Cache.
    """

    capacity: SizeLike = "1GB"
    blocks_per_page: int = 15
    associativity: int = 4
    block_size: int = BLOCK_SIZE
    row_buffer_size: int = ROW_BUFFER_SIZE
    #: Tag metadata bytes per page stored in the DRAM row (page tag, valid
    #: bit, valid/dirty bit vectors, LRU bits, (PC, offset) pair) -- 8 bytes
    #: per page as drawn in Figure 2.
    tag_bytes_per_page: int = 8
    use_way_prediction: bool = True
    #: Way-predictor index width: 12-bit XOR hash (16-bit above 4 GB).
    way_predictor_index_bits: int = 12
    #: Footprint history table entries (144 KB table as in Table II).
    footprint_table_entries: int = FOOTPRINT_TABLE_ENTRIES
    singleton_table_entries: int = SINGLETON_TABLE_ENTRIES
    #: Extra CPU cycles on a hit to stream the set's tag metadata (two bursts
    #: over the 128-bit TSV bus = 2 CPU cycles, Section III-A.6).
    tag_read_overhead_cycles: int = 2
    #: Penalty in CPU cycles for a way misprediction: the correct way is
    #: re-read from the (open) row buffer.
    way_mispredict_penalty_cycles: int = 12

    @property
    def capacity_bytes(self) -> int:
        """Total stacked-DRAM capacity devoted to this cache."""
        return parse_size(self.capacity)

    @property
    def page_data_bytes(self) -> int:
        """Data bytes per page (e.g. 960 for 15 blocks)."""
        return self.blocks_per_page * self.block_size

    @property
    def page_total_bytes(self) -> int:
        """Data plus embedded tag bytes per page."""
        return self.page_data_bytes + self.tag_bytes_per_page

    @property
    def pages_per_row(self) -> int:
        """Number of pages that fit in one DRAM row (data + tags)."""
        return self.row_buffer_size // self.page_total_bytes

    @property
    def sets_per_row(self) -> int:
        """Number of complete sets per DRAM row.

        Zero when the associativity exceeds the pages a row can hold (only
        the 32-way sensitivity study hits this); sets then span several rows.
        """
        return self.pages_per_row // self.associativity

    @property
    def num_rows(self) -> int:
        """Number of DRAM rows the cache occupies."""
        return self.capacity_bytes // self.row_buffer_size

    @property
    def num_pages(self) -> int:
        """Total number of page frames."""
        return self.num_rows * self.pages_per_row

    @property
    def num_sets(self) -> int:
        """Total number of sets."""
        return self.num_pages // self.associativity

    @property
    def data_blocks_per_row(self) -> int:
        """Data blocks stored per DRAM row (120 for the default config)."""
        return self.pages_per_row * self.blocks_per_page

    @property
    def in_dram_tag_bytes(self) -> int:
        """Total bytes of DRAM capacity consumed by embedded tags."""
        return self.num_pages * self.tag_bytes_per_page

    @property
    def in_dram_tag_fraction(self) -> float:
        """Fraction of the stacked DRAM spent on tags (~3-6%, Table II)."""
        row_overhead = self.row_buffer_size - self.data_blocks_per_row * self.block_size
        return row_overhead / self.row_buffer_size

    @property
    def way_predictor_bytes(self) -> int:
        """Way predictor storage: 2 bits per entry (1 KB at 12 index bits)."""
        entries = 1 << self.way_predictor_index_bits
        return (entries * 2) // 8

    def validate(self) -> None:
        """Raise ``ValueError`` if the organization does not fit DRAM rows."""
        if self.blocks_per_page < 1:
            raise ValueError("blocks_per_page must be positive")
        if self.associativity < 1:
            raise ValueError("associativity must be positive")
        if self.pages_per_row < 1:
            raise ValueError(
                "a DRAM row must hold at least one page: "
                f"page of {self.page_total_bytes}B does not fit a "
                f"{self.row_buffer_size}B row"
            )
        if self.capacity_bytes % self.row_buffer_size:
            raise ValueError("capacity must be a whole number of DRAM rows")
        if self.num_sets < 1:
            raise ValueError("cache must contain at least one set")

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"UnisonCache({format_size(self.capacity_bytes)}, "
            f"{self.page_data_bytes}B pages, {self.associativity}-way)"
        )


# --------------------------------------------------------------------------- #
# Alloy Cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AlloyCacheConfig:
    """Alloy Cache organization (Section IV-C.3).

    Direct-mapped, block-based; each 72-byte tag-and-data (TAD) unit holds a
    64-byte block plus an 8-byte tag, so an 8 KB row holds 112 TADs.  A
    per-core miss predictor (MAP-I style) decides whether to bypass the
    DRAM-cache lookup.
    """

    capacity: SizeLike = "1GB"
    block_size: int = BLOCK_SIZE
    tag_bytes: int = 8
    row_buffer_size: int = ROW_BUFFER_SIZE
    use_miss_predictor: bool = True
    miss_predictor_entries_per_core: int = 256
    miss_predictor_latency_cycles: int = 1

    @property
    def capacity_bytes(self) -> int:
        """Total stacked-DRAM capacity devoted to this cache."""
        return parse_size(self.capacity)

    @property
    def tad_bytes(self) -> int:
        """Size of one tag-and-data unit."""
        return self.block_size + self.tag_bytes

    @property
    def blocks_per_row(self) -> int:
        """TADs per DRAM row (112 for the default parameters).

        TADs are packed in aligned groups of four (the MICRO'12 design reads
        TADs with burst-aligned accesses), so the raw ``row // 72`` count is
        rounded down to a multiple of four: 112 for an 8 KB row.
        """
        raw = self.row_buffer_size // self.tad_bytes
        return max(1, (raw // 4) * 4)

    @property
    def num_rows(self) -> int:
        """Number of DRAM rows the cache occupies."""
        return self.capacity_bytes // self.row_buffer_size

    @property
    def num_blocks(self) -> int:
        """Total number of block frames (== number of sets, direct-mapped)."""
        return self.num_rows * self.blocks_per_row

    @property
    def in_dram_tag_bytes(self) -> int:
        """DRAM bytes consumed by tags (12.5% of capacity, Table II)."""
        return self.num_blocks * self.tag_bytes

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical organization."""
        if self.capacity_bytes % self.row_buffer_size:
            raise ValueError("capacity must be a whole number of DRAM rows")
        if self.blocks_per_row < 1:
            raise ValueError("a DRAM row must hold at least one TAD")

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return f"AlloyCache({format_size(self.capacity_bytes)}, direct-mapped)"


# --------------------------------------------------------------------------- #
# Footprint Cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FootprintCacheConfig:
    """Footprint Cache organization (Section IV-C.2).

    Page-based with SRAM tags; the paper evaluates 2 KB pages and a highly
    associative (32-way) organization.  The SRAM tag array's size and lookup
    latency grow with capacity (Table IV).
    """

    capacity: SizeLike = "1GB"
    page_size: int = 2048
    associativity: int = 32
    block_size: int = BLOCK_SIZE
    row_buffer_size: int = ROW_BUFFER_SIZE
    footprint_table_entries: int = FOOTPRINT_TABLE_ENTRIES
    singleton_table_entries: int = SINGLETON_TABLE_ENTRIES

    @property
    def capacity_bytes(self) -> int:
        """Total stacked-DRAM capacity devoted to this cache."""
        return parse_size(self.capacity)

    @property
    def blocks_per_page(self) -> int:
        """Blocks per page (32 for 2 KB pages)."""
        return self.page_size // self.block_size

    @property
    def num_pages(self) -> int:
        """Total number of page frames."""
        return self.capacity_bytes // self.page_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return max(1, self.num_pages // self.associativity)

    @property
    def blocks_per_row(self) -> int:
        """Data blocks per DRAM row (128: no embedded tags)."""
        return self.row_buffer_size // self.block_size

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical organization."""
        if self.page_size % self.block_size:
            raise ValueError("page_size must be a multiple of block_size")
        if self.capacity_bytes % self.page_size:
            raise ValueError("capacity must be a whole number of pages")
        if self.associativity < 1:
            raise ValueError("associativity must be positive")

    @property
    def tag_array(self) -> "FootprintTagArrayModel":
        """The SRAM tag-array model for this capacity."""
        return footprint_tag_array_for_capacity(self.capacity_bytes, self.page_size)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"FootprintCache({format_size(self.capacity_bytes)}, "
            f"{self.page_size}B pages, {self.associativity}-way)"
        )


@dataclass(frozen=True)
class FootprintTagArrayModel:
    """SRAM tag array size and lookup latency for Footprint Cache (Table IV)."""

    capacity_bytes: int
    tag_bytes: int
    lookup_latency_cycles: int

    @property
    def tag_megabytes(self) -> float:
        """Tag array size in binary megabytes."""
        return self.tag_bytes / (1024 ** 2)


#: Table IV of the paper: SRAM tag array size (MB) and conservatively
#: estimated lookup latency (CPU cycles) for Footprint Cache, per capacity.
_TABLE_IV: Dict[int, "tuple[float, int]"] = {
    parse_size("128MB"): (0.8, 6),
    parse_size("256MB"): (1.58, 9),
    parse_size("512MB"): (3.12, 11),
    parse_size("1GB"): (6.2, 16),
    parse_size("2GB"): (12.5, 25),
    parse_size("4GB"): (25.0, 36),
    parse_size("8GB"): (50.0, 48),
}


def footprint_tag_array_for_capacity(
    capacity: SizeLike, page_size: int = 2048
) -> FootprintTagArrayModel:
    """Return the Footprint Cache SRAM tag-array model for a capacity.

    Capacities listed in Table IV use the paper's numbers directly.  Other
    capacities are modelled by scaling the per-page tag cost linearly (the tag
    entry stores tag, valid/dirty vectors, replacement state, and the (PC,
    offset) pair -- about 6.2 MB per GB with 2 KB pages) and interpolating the
    latency on a logarithmic capacity scale.
    """
    capacity_bytes = parse_size(capacity)
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    if capacity_bytes in _TABLE_IV and page_size == 2048:
        tag_mb, latency = _TABLE_IV[capacity_bytes]
        return FootprintTagArrayModel(
            capacity_bytes=capacity_bytes,
            tag_bytes=int(tag_mb * 1024 ** 2),
            lookup_latency_cycles=latency,
        )

    # Per-page tag entry cost implied by Table IV at 2KB pages (~12.7 bytes);
    # scale with the number of pages.
    num_pages = capacity_bytes // page_size
    bytes_per_entry = 12.7 * (page_size / 2048) ** 0  # entry size independent of page size
    tag_bytes = int(num_pages * bytes_per_entry)

    # Latency: interpolate between known points on log2(capacity).
    import math

    known = sorted(_TABLE_IV.items())
    log_cap = math.log2(capacity_bytes)
    if capacity_bytes <= known[0][0]:
        latency = known[0][1][1]
    elif capacity_bytes >= known[-1][0]:
        # Extrapolate: latency grows ~ +12 cycles per doubling at the top end.
        extra_doublings = log_cap - math.log2(known[-1][0])
        latency = int(round(known[-1][1][1] + 12 * extra_doublings))
    else:
        latency = known[0][1][1]
        for (cap_lo, (_, lat_lo)), (cap_hi, (_, lat_hi)) in zip(known, known[1:]):
            if cap_lo <= capacity_bytes <= cap_hi:
                frac = (log_cap - math.log2(cap_lo)) / (
                    math.log2(cap_hi) - math.log2(cap_lo)
                )
                latency = int(round(lat_lo + frac * (lat_hi - lat_lo)))
                break
    return FootprintTagArrayModel(
        capacity_bytes=capacity_bytes,
        tag_bytes=tag_bytes,
        lookup_latency_cycles=latency,
    )


def scaled_capacity(paper_capacity: SizeLike, scale: int) -> int:
    """Scaled-down simulated capacity for a *paper* capacity.

    The experiment harness shrinks every structure by ``scale`` while keeping
    the row organization intact: the result is rounded down to a whole number
    of :data:`ROW_BUFFER_SIZE` rows and never collapses below a handful of
    rows.
    """
    capacity = parse_size(paper_capacity)
    if scale <= 0:
        raise ValueError("scale must be positive")
    scaled = capacity // scale
    return max(ROW_BUFFER_SIZE * 4, (scaled // ROW_BUFFER_SIZE) * ROW_BUFFER_SIZE)
