"""Footprint predictor.

The footprint of a page is the set of blocks touched between the page's
allocation and its eviction.  The predictor exploits the correlation between
the *code* that first touches a page and the page's eventual footprint: it is
indexed by the (PC, offset) pair of the trigger access, and each entry stores
the footprint bit vector last observed for that pair (Section III-A.1).

The history table is a finite, set-associative SRAM structure (144 KB in
Table II); capacity and conflict behaviour are modelled so that workloads with
many active code sites (e.g. Software Testing) see realistic accuracy loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.stats.counters import RatioStat, StatGroup
from repro.utils.bitvector import BitVector
from repro.utils.hashing import mix64


@dataclass(frozen=True)
class FootprintPrediction:
    """The predictor's answer for a trigger access."""

    #: Predicted footprint over the page's blocks.
    footprint: BitVector
    #: True if the page is predicted to contain only the trigger block.
    is_singleton: bool
    #: True if the prediction came from a trained entry (False == default).
    from_history: bool


class FootprintPredictor:
    """(PC, offset)-indexed footprint history table.

    Parameters
    ----------
    blocks_per_page:
        Width of the footprint bit vectors (15 for 960 B Unison pages, 31 for
        1984 B pages, 32 for 2 KB Footprint Cache pages).
    num_entries:
        Total history-table entries (the paper's 144 KB table is ~16 K
        entries).
    associativity:
        History-table associativity; entries are replaced LRU within a set.
    default_all_blocks:
        What to predict for an untrained (PC, offset) pair: the whole page
        (True, the Footprint Cache default, maximizing hit rate at the price
        of overfetch on cold code) or just the trigger block (False).
    """

    def __init__(self, blocks_per_page: int, num_entries: int = 16 * 1024,
                 associativity: int = 4, default_all_blocks: bool = True) -> None:
        if blocks_per_page <= 0:
            raise ValueError("blocks_per_page must be positive")
        if num_entries <= 0 or associativity <= 0:
            raise ValueError("num_entries and associativity must be positive")
        if num_entries % associativity:
            raise ValueError("num_entries must be divisible by associativity")
        self.blocks_per_page = blocks_per_page
        self.num_entries = num_entries
        self.associativity = associativity
        self.default_all_blocks = default_all_blocks
        self.num_sets = num_entries // associativity
        # Each set maps a full (PC, offset) key to (footprint, recency).
        self._sets: Dict[int, Dict[Tuple[int, int], BitVector]] = {}
        self._recency: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._clock = 0
        # Statistics
        self.lookups = 0
        self.trained_hits = 0
        self.updates = 0
        self.accuracy = RatioStat("footprint_accuracy")
        self.fetched_blocks = 0
        self.useful_blocks = 0
        self.overfetched_blocks = 0
        self.underpredicted_blocks = 0
        # Trained-prediction-only accounting (what Table V reports: in the
        # paper's 20-billion-instruction warm-up regime the fraction of
        # cold, untrained predictions is negligible, so accuracy/overfetch
        # are properties of the *trained* predictor).
        self.trained_accuracy = RatioStat("trained_footprint_accuracy")
        self.trained_fetched_blocks = 0
        self.trained_overfetched_blocks = 0

    # ------------------------------------------------------------------ #
    def _set_index(self, pc: int, offset: int) -> int:
        return mix64(pc * 1000003 + offset) % self.num_sets

    def _touch(self, set_index: int, key: Tuple[int, int]) -> None:
        self._clock += 1
        self._recency.setdefault(set_index, {})[key] = self._clock

    # ------------------------------------------------------------------ #
    def predict(self, pc: int, offset: int) -> FootprintPrediction:
        """Predict the footprint for a trigger access at (pc, offset)."""
        if not 0 <= offset < self.blocks_per_page:
            raise ValueError(
                f"offset {offset} out of range for {self.blocks_per_page}-block pages"
            )
        self.lookups += 1
        set_index = self._set_index(pc, offset)
        key = (pc, offset)
        entry = self._sets.get(set_index, {}).get(key)
        if entry is not None:
            self.trained_hits += 1
            self._touch(set_index, key)
            footprint = entry.copy()
            # The trigger block is demanded by definition.
            footprint.set(offset)
            return FootprintPrediction(
                footprint=footprint,
                is_singleton=footprint.popcount() == 1,
                from_history=True,
            )
        if self.default_all_blocks:
            footprint = BitVector.ones(self.blocks_per_page)
        else:
            footprint = BitVector.from_indices(self.blocks_per_page, [offset])
        return FootprintPrediction(
            footprint=footprint,
            is_singleton=footprint.popcount() == 1,
            from_history=False,
        )

    # ------------------------------------------------------------------ #
    def update(self, pc: int, offset: int, actual_footprint: BitVector) -> None:
        """Record the actual footprint of an evicted page for its trigger pair."""
        if actual_footprint.width != self.blocks_per_page:
            raise ValueError(
                "footprint width mismatch: "
                f"{actual_footprint.width} vs {self.blocks_per_page}"
            )
        self.updates += 1
        set_index = self._set_index(pc, offset)
        key = (pc, offset)
        entries = self._sets.setdefault(set_index, {})
        if key not in entries and len(entries) >= self.associativity:
            recency = self._recency.get(set_index, {})
            victim = min(entries, key=lambda k: recency.get(k, 0))
            del entries[victim]
            recency.pop(victim, None)
        entries[key] = actual_footprint.copy()
        self._touch(set_index, key)

    # ------------------------------------------------------------------ #
    def record_outcome(self, predicted: BitVector, actual: BitVector,
                       from_history: bool = True) -> None:
        """Account a prediction's quality once the page's true footprint is known.

        Updates the Table V metrics: *accuracy* is the fraction of the actual
        footprint that was predicted (and therefore present in the cache when
        demanded); *overfetch* counts predicted-but-untouched blocks.  Cold
        (default, untrained) predictions are accounted separately from
        history-based ones; the headline metrics report the trained
        predictor's behaviour, matching the paper's long-warm-up methodology.
        """
        correct = predicted.intersection(actual).popcount()
        actual_count = actual.popcount()
        predicted_count = predicted.popcount()
        self.accuracy.add(correct, max(1, actual_count))
        self.fetched_blocks += predicted_count
        self.useful_blocks += correct
        self.overfetched_blocks += predicted_count - correct
        self.underpredicted_blocks += actual_count - correct
        if from_history:
            self.trained_accuracy.add(correct, max(1, actual_count))
            self.trained_fetched_blocks += predicted_count
            self.trained_overfetched_blocks += predicted_count - correct

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Zero the accuracy/traffic counters without forgetting learned footprints."""
        self.lookups = 0
        self.trained_hits = 0
        self.updates = 0
        self.accuracy.reset()
        self.fetched_blocks = 0
        self.useful_blocks = 0
        self.overfetched_blocks = 0
        self.underpredicted_blocks = 0
        self.trained_accuracy.reset()
        self.trained_fetched_blocks = 0
        self.trained_overfetched_blocks = 0

    @property
    def overfetch_ratio(self) -> float:
        """Overfetch of trained predictions (falls back to all predictions)."""
        if self.trained_fetched_blocks > 0:
            return self.trained_overfetched_blocks / self.trained_fetched_blocks
        if self.fetched_blocks == 0:
            return 0.0
        return self.overfetched_blocks / self.fetched_blocks

    @property
    def overall_overfetch_ratio(self) -> float:
        """Overfetch over every prediction, cold defaults included."""
        if self.fetched_blocks == 0:
            return 0.0
        return self.overfetched_blocks / self.fetched_blocks

    @property
    def accuracy_ratio(self) -> float:
        """Accuracy of trained predictions (falls back to all predictions)."""
        if self.trained_accuracy.denominator > 0:
            return self.trained_accuracy.value
        return self.accuracy.value

    def stats(self) -> StatGroup:
        """Predictor statistics (Table V inputs)."""
        group = StatGroup("footprint_predictor")
        group.set("lookups", self.lookups)
        group.set("trained_hits", self.trained_hits)
        group.set("updates", self.updates)
        group.set("accuracy", self.accuracy_ratio)
        group.set("overfetch_ratio", self.overfetch_ratio)
        group.set("overall_accuracy", self.accuracy.value)
        group.set("overall_overfetch_ratio", self.overall_overfetch_ratio)
        group.set("trained_outcomes", self.trained_accuracy.denominator)
        group.set("fetched_blocks", self.fetched_blocks)
        group.set("useful_blocks", self.useful_blocks)
        group.set("overfetched_blocks", self.overfetched_blocks)
        group.set("underpredicted_blocks", self.underpredicted_blocks)
        return group
