"""Predictors used by the DRAM cache designs.

* :class:`repro.predictors.footprint.FootprintPredictor` -- the (PC, offset)
  indexed spatial-correlation predictor shared by Footprint Cache and Unison
  Cache (Section III-A.1-3).
* :class:`repro.predictors.singleton.SingletonTable` -- tracks pages predicted
  to be singletons so mispredictions can still be corrected (Section III-A.4).
* :class:`repro.predictors.way.WayPredictor` -- the 2-bit, XOR-hash-indexed
  page-level way predictor of Unison Cache (Section III-A.6).
* :class:`repro.predictors.miss.MissPredictor` -- the per-core, PC-indexed
  hit/miss predictor used by Alloy Cache (MAP-I style).
"""

from repro.predictors.footprint import FootprintPredictor, FootprintPrediction
from repro.predictors.miss import MissPredictor
from repro.predictors.singleton import SingletonTable
from repro.predictors.way import WayPredictor

__all__ = [
    "FootprintPredictor",
    "FootprintPrediction",
    "MissPredictor",
    "SingletonTable",
    "WayPredictor",
]
