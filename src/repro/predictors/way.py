"""Page-level way predictor.

Unison Cache is set-associative but must not serialize tag and data reads nor
fetch all ways in parallel, so the DRAM controller predicts the way before
issuing the data-block read.  The predictor is "a 2-bit array directly indexed
by the 12-bit XOR hash of the page address (16-bit XOR for caches above 4GB)"
(Section III-A.6).  Because it operates at page granularity and pages enjoy
abundant spatial locality, its accuracy is ~95%, much higher than block-level
way predictors.
"""

from __future__ import annotations

from typing import List

from repro.stats.counters import RatioStat, StatGroup
from repro.utils.hashing import fold_xor


class WayPredictor:
    """XOR-hash-indexed table of predicted ways.

    Parameters
    ----------
    index_bits:
        Width of the XOR-folded index (12 for caches up to 4 GB, 16 above).
    associativity:
        Number of ways being predicted; each entry stores ``ceil(log2(ways))``
        bits (2 bits for the paper's 4-way organization).
    """

    def __init__(self, index_bits: int = 12, associativity: int = 4) -> None:
        if index_bits <= 0:
            raise ValueError("index_bits must be positive")
        if associativity <= 1:
            raise ValueError("way prediction needs associativity > 1")
        self.index_bits = index_bits
        self.associativity = associativity
        self._table: List[int] = [0] * (1 << index_bits)
        self.accuracy = RatioStat("way_prediction_accuracy")

    # ------------------------------------------------------------------ #
    @classmethod
    def for_capacity(cls, capacity_bytes: int, associativity: int = 4) -> "WayPredictor":
        """Build a predictor sized per the paper's rule (12 bits, 16 above 4 GB)."""
        index_bits = 16 if capacity_bytes > 4 * 1024 ** 3 else 12
        return cls(index_bits=index_bits, associativity=associativity)

    @property
    def num_entries(self) -> int:
        """Number of table entries."""
        return len(self._table)

    @property
    def storage_bytes(self) -> int:
        """SRAM storage of the table (2-bit entries for 4-way)."""
        bits_per_entry = max(1, (self.associativity - 1).bit_length())
        return (self.num_entries * bits_per_entry) // 8

    # ------------------------------------------------------------------ #
    def _index(self, page_address: int) -> int:
        return fold_xor(page_address, self.index_bits)

    def predict(self, page_address: int) -> int:
        """Predicted way for the set that ``page_address`` maps to."""
        return self._table[self._index(page_address)]

    def update(self, page_address: int, actual_way: int) -> None:
        """Train the predictor with the way the page was actually found in."""
        if not 0 <= actual_way < self.associativity:
            raise ValueError(
                f"actual_way {actual_way} out of range for "
                f"{self.associativity}-way prediction"
            )
        self._table[self._index(page_address)] = actual_way

    def record(self, page_address: int, actual_way: int) -> bool:
        """Predict, score against the actual way, train, and return correctness."""
        predicted = self.predict(page_address)
        correct = predicted == actual_way
        self.accuracy.record(correct)
        self.update(page_address, actual_way)
        return correct

    def reset_stats(self) -> None:
        """Zero the accuracy counters without forgetting the prediction table."""
        self.accuracy.reset()

    # ------------------------------------------------------------------ #
    def stats(self) -> StatGroup:
        """Accuracy and sizing statistics."""
        group = StatGroup("way_predictor")
        group.set("accuracy", self.accuracy.value)
        group.set("predictions", self.accuracy.denominator)
        group.set("entries", self.num_entries)
        group.set("storage_bytes", self.storage_bytes)
        return group
