"""Singleton table.

A significant fraction of page footprints contain only a single block
("singletons"); allocating a whole page frame for them wastes capacity, so
Unison Cache (like Footprint Cache) does not allocate a page when the
footprint predictor says "singleton" -- the block is fetched and forwarded.
Because un-allocated pages never get evicted, the usual eviction-time
correction path cannot fix a wrong singleton prediction; the small singleton
table fills that gap by remembering recent singleton pages and watching for a
second block being demanded (Section III-A.4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.stats.counters import StatGroup
from repro.utils.bitvector import BitVector


@dataclass
class SingletonEntry:
    """State kept for one page that was predicted (and served) as a singleton."""

    page_number: int
    trigger_pc: int
    trigger_offset: int
    observed: BitVector


class SingletonTable:
    """LRU table of recently-seen singleton pages.

    Parameters
    ----------
    num_entries:
        Capacity of the table (the paper's table is 3 KB, on the order of a
        few hundred entries).
    blocks_per_page:
        Width of the observed-block bit vectors.
    """

    def __init__(self, num_entries: int = 256, blocks_per_page: int = 15) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if blocks_per_page <= 0:
            raise ValueError("blocks_per_page must be positive")
        self.num_entries = num_entries
        self.blocks_per_page = blocks_per_page
        self._entries: "OrderedDict[int, SingletonEntry]" = OrderedDict()
        # Statistics
        self.insertions = 0
        self.promotions = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def insert(self, page_number: int, trigger_pc: int, trigger_offset: int) -> None:
        """Record a page that was just served as a singleton."""
        if not 0 <= trigger_offset < self.blocks_per_page:
            raise ValueError("trigger_offset out of range")
        observed = BitVector.from_indices(self.blocks_per_page, [trigger_offset])
        entry = SingletonEntry(
            page_number=page_number,
            trigger_pc=trigger_pc,
            trigger_offset=trigger_offset,
            observed=observed,
        )
        if page_number in self._entries:
            self._entries.pop(page_number)
        elif len(self._entries) >= self.num_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[page_number] = entry
        self.insertions += 1

    def lookup(self, page_number: int) -> Optional[SingletonEntry]:
        """Return the entry for a page (refreshing its recency), or None."""
        entry = self._entries.get(page_number)
        if entry is not None:
            self._entries.move_to_end(page_number)
        return entry

    def record_access(self, page_number: int,
                      block_offset: int) -> Optional[Tuple[int, int, BitVector]]:
        """Note a demand to ``block_offset`` of a tracked singleton page.

        If the access shows the page is *not* actually a singleton, the entry
        is removed and ``(trigger_pc, trigger_offset, observed_footprint)`` is
        returned so the caller can correct the footprint predictor and, if it
        chooses, allocate the page properly.  Returns None otherwise.
        """
        entry = self.lookup(page_number)
        if entry is None:
            return None
        if not 0 <= block_offset < self.blocks_per_page:
            raise ValueError("block_offset out of range")
        entry.observed.set(block_offset)
        if entry.observed.popcount() > 1:
            del self._entries[page_number]
            self.promotions += 1
            return entry.trigger_pc, entry.trigger_offset, entry.observed.copy()
        return None

    def remove(self, page_number: int) -> bool:
        """Drop a page from the table; returns True if it was present."""
        return self._entries.pop(page_number, None) is not None

    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of pages currently tracked."""
        return len(self._entries)

    def stats(self) -> StatGroup:
        """Table statistics."""
        group = StatGroup("singleton_table")
        group.set("insertions", self.insertions)
        group.set("promotions", self.promotions)
        group.set("evictions", self.evictions)
        group.set("occupancy", self.occupancy)
        return group
