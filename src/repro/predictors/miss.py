"""Hit/miss predictor for Alloy Cache.

Alloy Cache avoids paying the DRAM-cache tag lookup on misses by predicting,
per request, whether the access will hit; predicted misses go straight to
off-chip memory in parallel.  The paper's Alloy Cache uses the MAP-I
(memory-access-pattern, instruction-based) predictor: small per-core tables of
saturating counters indexed by a hash of the requesting PC (96 B per core,
1.5 KB total in Table II).
"""

from __future__ import annotations

from typing import List

from repro.stats.counters import RatioStat, StatGroup
from repro.utils.hashing import fold_xor


class MissPredictor:
    """Per-core, PC-indexed saturating-counter miss predictor (MAP-I style).

    Parameters
    ----------
    num_cores:
        Number of per-core predictor instances.
    entries_per_core:
        Counters per core.
    counter_bits:
        Width of each saturating counter (3 bits in the original design).
    """

    def __init__(self, num_cores: int = 16, entries_per_core: int = 256,
                 counter_bits: int = 3) -> None:
        if num_cores <= 0 or entries_per_core <= 0:
            raise ValueError("num_cores and entries_per_core must be positive")
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.num_cores = num_cores
        self.entries_per_core = entries_per_core
        self.counter_bits = counter_bits
        self._max_value = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        # Counters start biased toward predicting hits (0 == strongly hit).
        self._tables: List[List[int]] = [
            [0] * entries_per_core for _ in range(num_cores)
        ]
        self._index_bits = max(1, (entries_per_core - 1).bit_length())
        # Statistics
        self.accuracy = RatioStat("miss_prediction_accuracy")
        self.miss_identification = RatioStat("miss_identification")
        self.false_misses = 0      # hits predicted as misses -> extra off-chip traffic
        self.false_hits = 0        # misses predicted as hits -> extra latency
        self.predictions = 0

    # ------------------------------------------------------------------ #
    def _index(self, pc: int) -> int:
        return fold_xor(pc >> 2, self._index_bits) % self.entries_per_core

    def predict_miss(self, core_id: int, pc: int) -> bool:
        """True if the access is predicted to miss in the DRAM cache."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range")
        counter = self._tables[core_id][self._index(pc)]
        self.predictions += 1
        return counter >= self._threshold

    def update(self, core_id: int, pc: int, was_miss: bool) -> None:
        """Train with the actual outcome of the access."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range")
        index = self._index(pc)
        table = self._tables[core_id]
        if was_miss:
            table[index] = min(self._max_value, table[index] + 1)
        else:
            table[index] = max(0, table[index] - 1)

    def record(self, core_id: int, pc: int, was_miss: bool) -> bool:
        """Predict, score, and train in one step; returns the prediction."""
        predicted_miss = self.predict_miss(core_id, pc)
        correct = predicted_miss == was_miss
        self.accuracy.record(correct)
        if was_miss:
            # Table V's "MP Accuracy" is the fraction of misses correctly
            # identified as misses.
            self.miss_identification.record(predicted_miss)
        if predicted_miss and not was_miss:
            self.false_misses += 1
        if not predicted_miss and was_miss:
            self.false_hits += 1
        self.update(core_id, pc, was_miss)
        return predicted_miss

    def reset_stats(self) -> None:
        """Zero the accuracy counters without forgetting the counter tables."""
        self.accuracy.reset()
        self.miss_identification.reset()
        self.false_misses = 0
        self.false_hits = 0
        self.predictions = 0

    # ------------------------------------------------------------------ #
    @property
    def storage_bytes_per_core(self) -> int:
        """SRAM bytes per core (96 B for the default parameters)."""
        return (self.entries_per_core * self.counter_bits) // 8

    @property
    def storage_bytes_total(self) -> int:
        """Total predictor storage across all cores."""
        return self.storage_bytes_per_core * self.num_cores

    def stats(self) -> StatGroup:
        """Accuracy and traffic-impact statistics."""
        group = StatGroup("miss_predictor")
        group.set("accuracy", self.accuracy.value)
        group.set("miss_identification", self.miss_identification.value)
        group.set("false_misses", self.false_misses)
        group.set("false_hits", self.false_hits)
        group.set("predictions", self.predictions)
        group.set("storage_bytes_total", self.storage_bytes_total)
        return group
