#!/usr/bin/env python3
"""Tour of the streaming trace subsystem.

Walks through the full trace lifecycle without ever materializing more than
one chunk at a time where it matters:

1. stream a synthetic workload trace straight to a compact binary file;
2. inspect its self-describing header;
3. build a lazy :class:`repro.TraceSource` pipeline over it (window, core
   select, address remap, deterministic downsample) and persist the result;
4. ingest an external CSV trace and replay it through a DRAM-cache sweep as
   a first-class workload next to a synthetic one.

Usage::

    python examples/trace_pipeline_tour.py [--accesses 200000]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, FileSource, SweepSpec, run_sweep
from repro.sim.experiment import ExperimentRunner
from repro.trace.binfmt import read_header, write_trace_bin
from repro.workloads.cloudsuite import workload_by_name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--scale", type=int, default=2048)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-tour-"))
    config = ExperimentConfig(scale=args.scale, num_accesses=args.accesses,
                              num_cores=4, seed=1)
    runner = ExperimentRunner(config)
    profile = workload_by_name("Web Search")

    # 1. Stream the synthetic trace to disk, chunk by chunk: the full trace
    #    never exists in memory here.
    trace_path = workdir / "websearch.rptr"
    count = write_trace_bin(
        trace_path,
        (access for chunk in runner.iter_trace_chunks(profile)
         for access in chunk),
        num_cores=config.num_cores,
    )
    print(f"generated {count} accesses -> {trace_path}")

    # 2. The header describes the file without decompressing the payload.
    info = read_header(trace_path)
    print(f"header: v{info.version} compressed={info.compressed} "
          f"cores={info.num_cores} accesses={info.access_count} "
          f"({info.file_bytes} bytes on disk)")

    # 3. A lazy pipeline: steady-state window, two cores, addresses folded
    #    into 256 MB, a deterministic 25% sample.  Nothing runs until the
    #    terminal .write() streams it out.
    sampled_path = workdir / "sampled.rptr"
    pipeline = (FileSource(trace_path)
                .window(count // 4, 3 * count // 4)
                .cores(0, 1)
                .remap_addresses(lambda a: a % (256 << 20))
                .downsample(0.25, seed=7))
    written = pipeline.write(sampled_path)
    print(f"pipeline kept {written} accesses -> {sampled_path}")

    # 4. Ingest an external CSV trace (the kind a real system would dump)
    #    and sweep it next to a synthetic workload: trace files are
    #    first-class workloads in a SweepSpec.
    csv_path = workdir / "external.csv"
    with csv_path.open("w") as handle:
        handle.write("pc,address,type\n")
        for access in FileSource(sampled_path).limit(20_000):
            code = "W" if access.is_write else "R"
            handle.write(f"{access.pc:#x},{access.address:#x},{code}\n")
    print(f"exported an external-style CSV trace -> {csv_path}")

    spec = SweepSpec(
        designs=("unison", "alloy"),
        workloads=("Web Search", f"trace:{csv_path}"),
        capacities=("256MB",),
        config=config,
    )
    results = run_sweep(spec)
    print()
    print(results.table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
