#!/usr/bin/env python3
"""Tour of the results service: archive a sweep, serve it, scrape it.

Walks the full ``repro serve`` loop without ever leaving one process:

1. drain a *sampled* sweep through the durable work queue with
   telemetry enabled, so all three stores exist -- job store, result
   archive (with per-trial 95% CI extras), and run ledger;
2. start the zero-dependency HTTP server on an ephemeral port (the
   same code path as ``repro serve``);
3. query ``/api/sweeps`` and ``/api/runs/<token>`` like a script or CI
   job would;
4. fetch the fig6 miss-ratio SVG and show that each bar's
   ``data-mean``/``data-half-width`` attributes equal the archived
   ResultSet floats *exactly*;
5. submit a second sweep and watch ``/api/queue`` while a worker
   thread drains it -- the live view the dashboard polls.

The tour isolates itself in a temporary trace-store root so it never
touches (or depends on) your real caches.  To explore the dashboard
interactively afterwards, run ``repro serve`` against a real root and
open the printed URL in a browser.

Usage::

    python examples/serve_tour.py [--accesses 8000]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
import urllib.request
import xml.etree.ElementTree as ET
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

SVG_NS = "{http://www.w3.org/2000/svg}"


def fetch(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base.rstrip("/") + path) as reply:
        assert reply.status == 200, (path, reply.status)
        return reply.read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=8000)
    parser.add_argument("--scale", type=int, default=2048)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-serve-tour-") as root:
        os.environ["REPRO_TRACE_STORE"] = root
        os.environ["REPRO_QUEUE_DIR"] = str(Path(root) / "queue")
        os.environ["REPRO_TELEMETRY"] = "1"
        os.environ["REPRO_TELEMETRY_DIR"] = str(Path(root) / "telemetry")

        from repro import ExperimentConfig, SamplingConfig, SweepSpec
        from repro.queue import SweepService, work
        from repro.serve import create_server

        # ---- 1. archive a sampled sweep through the queue ----------- #
        spec = SweepSpec(
            designs=("unison", "alloy", "footprint"),
            workloads=("Web Search",),
            capacities=("512MB",),
            config=ExperimentConfig(scale=args.scale,
                                    num_accesses=args.accesses),
            sampling=SamplingConfig(window_accesses=400, max_windows=8,
                                    min_windows=4),
        )
        service = SweepService()
        token = service.submit(spec).token
        print(f"[1] draining sampled sweep {token[:12]}… "
              f"({len(spec.trials())} trials)")
        resultset = service.run(spec)
        print(f"    archived {len(resultset)} results")

        # ---- 2. start the server on an ephemeral port --------------- #
        # The read side ignores the telemetry *enable* switch -- drop it
        # to prove serving works with REPRO_TELEMETRY unset.
        del os.environ["REPRO_TELEMETRY"]
        server = create_server(host="127.0.0.1", port=0, root=root,
                               quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"[2] serving {root} on {server.url}")

        # ---- 3. the JSON API ---------------------------------------- #
        sweeps = json.loads(fetch(server.url, "/api/sweeps"))
        meta = next(s for s in sweeps["sweeps"] if s["token"] == token)
        print(f"[3] /api/sweeps -> {meta['records']}/{meta['total']} "
              f"records, complete={meta['complete']}")
        summary = json.loads(
            fetch(server.url, f"/api/runs/{token[:10]}"))["summary"]
        print(f"    /api/runs/{token[:10]} -> {summary['runs']} runs, "
              f"{summary['wall_seconds']:.2f}s wall, "
              f"{summary.get('accesses_per_sec', 0):,.0f} accesses/s")

        # ---- 4. fig6 SVG with exact CI numbers ---------------------- #
        svg = ET.fromstring(fetch(server.url, "/api/figures/fig6")
                            .decode("utf-8"))
        bars = {rect.get("data-series"): rect
                for rect in svg.iter(f"{SVG_NS}rect")
                if rect.get("data-series")}
        print("[4] /api/figures/fig6 bars (mean ± 95% CI, exact):")
        for result in resultset:
            rect = bars[result.design]
            mean = float(rect.get("data-mean"))
            half = float(rect.get("data-half-width"))
            assert mean == result.miss_ratio
            assert half == result.extra["sampling_miss_ratio_half_width"]
            print(f"    {result.design:<10} miss {100 * mean:5.2f}% "
                  f"± {100 * half:.2f}%")

        # ---- 5. live /api/queue while a worker drains --------------- #
        second = SweepSpec(
            designs=("unison",),
            workloads=("Data Serving",),
            capacities=("512MB",),
            config=spec.config,
            sampling=spec.sampling,
        )
        token2 = service.submit(second).token
        print(f"[5] watching /api/queue while a worker drains "
              f"{token2[:12]}…")
        worker = threading.Thread(
            target=work,
            kwargs=dict(db_path=service.db_path, sweep=token2,
                        archive_path=service.archive_path),
            daemon=True)
        worker.start()
        last = None
        while True:
            queue = json.loads(
                fetch(server.url, f"/api/queue?token={token2}&jobs=0"))
            counts = queue["counts"]
            line = (f"    pending={counts['pending']} leased="
                    f"{counts['leased']} done={counts['done']}")
            if line != last:
                print(line)
                last = line
            if counts["done"] == queue["total"]:
                break
            time.sleep(0.2)
        worker.join(timeout=30)
        print(f"    drained; dashboard lives at {server.url}")
        server.shutdown()
        server.server_close()
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
