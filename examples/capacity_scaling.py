#!/usr/bin/env python3
"""Capacity scaling study: why DRAM-embedded tags matter (Figures 6-8).

Declares one :class:`repro.SweepSpec` covering designs x capacities for a
single workload, runs it through the sweep executor (use ``--jobs`` to fan
trials out over worker processes; the per-workload trace and the no-cache
baseline are generated once and shared by every cell), and reports the miss
ratio and the speedup over a no-DRAM-cache system.  The run illustrates the
paper's central scalability argument:

* Footprint Cache's SRAM tag latency grows with capacity (Table IV), so its
  performance stops improving even though its hit rate keeps rising;
* Unison Cache keeps its tags in the stacked DRAM, so its latency is
  capacity-independent and it overtakes Footprint Cache at multi-GB sizes;
* Alloy Cache scales trivially but is held back by its low hit rate.

Usage::

    python examples/capacity_scaling.py [--workload "TPC-H Queries"] [--jobs 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, SweepSpec, run_sweep

DEFAULT_CAPACITIES = ["128MB", "256MB", "512MB", "1GB", "2GB", "4GB", "8GB"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="TPC-H Queries")
    parser.add_argument("--designs", nargs="+",
                        default=["alloy", "footprint", "unison"])
    parser.add_argument("--capacities", nargs="+", default=DEFAULT_CAPACITIES)
    parser.add_argument("--accesses", type=int, default=45_000)
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="optionally export the ResultSet as JSON")
    args = parser.parse_args()

    spec = SweepSpec(
        designs=args.designs,
        workloads=(args.workload,),
        capacities=args.capacities,
        config=ExperimentConfig(scale=args.scale, num_accesses=args.accesses),
    )
    profile = spec.workloads[0]

    print(f"Capacity scaling for {profile.name} "
          f"(scale 1/{args.scale}, {args.accesses} accesses per point)\n")

    results = run_sweep(spec, workers=args.jobs)

    # spec.designs, not args.designs: the spec normalizes names, and result
    # records carry the normalized form.
    header = f"{'capacity':<10}" + "".join(
        f"{design + ' miss%':>18}{design + ' speedup':>18}"
        for design in spec.designs
    )
    print(header)
    print("-" * len(header))
    for capacity in spec.capacities:
        cells = [f"{capacity:<10}"]
        for design in spec.designs:
            result = results.filter(design=design, capacity=capacity)[0]
            cells.append(f"{result.miss_ratio_percent:>17.1f}%")
            cells.append(f"{result.speedup_vs_no_cache:>17.2f}x")
        print("".join(cells))

    if args.json:
        results.to_json(args.json)
        print(f"\nResultSet exported to {args.json}")

    print("\nNote: Footprint Cache above 512MB requires an SRAM tag array of "
          "6-50MB (Table IV), which the paper deems impractical; those points "
          "are hypothetical reference designs.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
