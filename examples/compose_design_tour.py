#!/usr/bin/env python3
"""Tour of the composable design API.

Walks the component layer end to end:

1. list the component kinds each policy role ships with;
2. show how the canonical designs decompose (their registered
   :class:`repro.dramcache.DesignSpec` breakdowns and identity tokens);
3. declare and register a brand-new hybrid (Loh-Hill's MissMap organization
   behind Alloy's MAP-I miss predictor) in a few lines;
4. sweep the new hybrid against the shipped hybrids (``alloy+footprint``,
   ``unison-nowp``) and their canonical parents on one workload;
5. verify in-process that a canonical class and its spec re-expression are
   bit-identical on a shared trace (what the test suite enforces for all
   six designs).

Usage::

    python examples/compose_design_tour.py [--accesses 20000]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, SweepSpec, run_sweep
from repro.config.cache_configs import scaled_capacity
from repro.dramcache import ComponentSpec, DesignSpec
from repro.dramcache.components import (
    FETCH_POLICIES,
    HIT_PREDICTORS,
    TAG_ORGANIZATIONS,
    WRITEBACK_POLICIES,
)
from repro.sim.factory import make_design
from repro.sim.registry import DESIGNS, DesignBuildContext
from repro.utils.units import parse_size
from repro.workloads.cloudsuite import workload_by_name
from repro.workloads.generator import SyntheticWorkload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=20_000)
    parser.add_argument("--scale", type=int, default=2048)
    args = parser.parse_args()

    # 1. The building blocks. ------------------------------------------- #
    print("=== component kinds ===")
    for registry in (TAG_ORGANIZATIONS, HIT_PREDICTORS, FETCH_POLICIES,
                     WRITEBACK_POLICIES):
        print(f"  {registry.role + ':':<18} {' '.join(sorted(registry.kinds()))}")
    print()

    # 2. How the shipped designs decompose. ----------------------------- #
    print("=== canonical designs as component specs ===")
    for name in ("unison", "alloy", "footprint", "loh_hill"):
        spec = DESIGNS.resolve(name).spec
        print(f"  {name:<12} {spec.describe_components()}")
    print()

    # 3. A brand-new design point: declare it, register it, done. -------- #
    hybrid = DesignSpec(
        name="loh_hill+map-i",
        tags=ComponentSpec("missmap"),
        hit_predictor=ComponentSpec("map-i"),
        description="Loh-Hill organization behind Alloy's miss predictor",
    )
    if "loh_hill+map-i" not in DESIGNS:
        DESIGNS.register_spec(hybrid)
    print("=== new hybrid registered ===")
    print(f"  {hybrid.name}: {hybrid.describe_components()}")
    print(f"  token: {hybrid.token()}")
    print()

    # 4. Hybrids are ordinary sweep citizens. --------------------------- #
    spec = SweepSpec(
        designs=("unison", "unison-nowp", "alloy", "alloy+footprint",
                 "loh_hill", "loh_hill+map-i"),
        workloads=("Web Search",),
        capacities=("1GB",),
        config=ExperimentConfig(scale=args.scale,
                                num_accesses=args.accesses, num_cores=4),
    )
    print(f"=== sweep: {spec.describe()} ===")
    results = run_sweep(spec)
    print(results.table())
    print()

    # 5. Class vs spec re-expression: bit-identical. --------------------- #
    profile = workload_by_name("Web Search")
    trace = SyntheticWorkload(profile, num_cores=4,
                              seed=1).generate(min(args.accesses, 10_000))
    paper = parse_size("1GB")
    context = DesignBuildContext(
        paper_capacity_bytes=paper,
        scaled_capacity_bytes=scaled_capacity(paper, args.scale),
        scale=args.scale, num_cores=4,
    )
    via_class = make_design("unison", "1GB", scale=args.scale, num_cores=4)
    via_spec = DESIGNS.resolve("unison").spec.build_composed(context)
    for design in (via_class, via_spec):
        design.run(trace)
    print("=== class vs spec re-expression (unison) ===")
    print(f"  class     miss {100 * via_class.cache_stats.miss_ratio:.4f}% "
          f"({type(via_class).__name__})")
    print(f"  composed  miss {100 * via_spec.cache_stats.miss_ratio:.4f}% "
          f"({type(via_spec).__name__})")
    identical = (via_class.cache_stats.miss_ratio
                 == via_spec.cache_stats.miss_ratio
                 and via_class.extra_metrics() == via_spec.extra_metrics())
    print(f"  bit-identical: {identical}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
