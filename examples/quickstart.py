#!/usr/bin/env python3
"""Quickstart: compare Unison Cache against the baselines on one workload.

Declares a one-workload :class:`repro.SweepSpec` over the four DRAM cache
designs (Alloy, Footprint, Unison, Ideal), runs it through the sweep
executor -- every design replays the *same* cached synthetic trace, so the
comparison is fair by construction -- and prints the metrics the paper's
evaluation revolves around: miss ratio, average hit latency, off-chip
traffic, and speedup over a system without a DRAM cache.

Usage::

    python examples/quickstart.py [--accesses 60000] [--scale 512] [--jobs 2]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, SweepSpec, run_sweep

DESIGNS = ("alloy", "footprint", "unison", "ideal")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="Web Search",
                        help="workload name (e.g. 'Web Search', 'Data Serving')")
    parser.add_argument("--capacity", default="1GB",
                        help="paper-scale DRAM cache capacity (e.g. 512MB, 1GB)")
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="number of L2-miss requests to simulate")
    parser.add_argument("--scale", type=int, default=512,
                        help="capacity scale-down factor for tractable runs")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    args = parser.parse_args()

    spec = SweepSpec(
        designs=DESIGNS,
        workloads=(args.workload,),
        capacities=(args.capacity,),
        config=ExperimentConfig(scale=args.scale, num_accesses=args.accesses),
    )
    profile = spec.workloads[0]

    print(f"Workload : {profile.name} (working set {profile.working_set}, "
          f"scaled 1/{args.scale})")
    print(f"Capacity : {args.capacity} (paper scale)")
    print(f"Accesses : {args.accesses} ({int(args.accesses / 3)} measured)")
    print()

    results = run_sweep(spec, workers=args.jobs)
    print(results.table())

    unison = results.filter(design="unison")[0]
    print()
    print(f"Unison way-prediction accuracy : {100 * unison.way_prediction_accuracy:.1f}%")
    print(f"Unison footprint accuracy      : {100 * unison.footprint_accuracy:.1f}%")
    print(f"Unison footprint overfetch     : {100 * unison.footprint_overfetch:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
