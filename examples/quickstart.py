#!/usr/bin/env python3
"""Quickstart: compare Unison Cache against the baselines on one workload.

Runs the four DRAM cache designs (Unison, Alloy, Footprint, Ideal) over the
same synthetic Web Search trace at a scaled-down 1 GB design point and prints
the metrics the paper's evaluation revolves around: miss ratio, average hit
latency, off-chip traffic, and speedup over a system without a DRAM cache.

Usage::

    python examples/quickstart.py [--accesses 60000] [--scale 512]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, ExperimentRunner, workload_by_name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="Web Search",
                        help="workload name (e.g. 'Web Search', 'Data Serving')")
    parser.add_argument("--capacity", default="1GB",
                        help="paper-scale DRAM cache capacity (e.g. 512MB, 1GB)")
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="number of L2-miss requests to simulate")
    parser.add_argument("--scale", type=int, default=512,
                        help="capacity scale-down factor for tractable runs")
    args = parser.parse_args()

    profile = workload_by_name(args.workload)
    runner = ExperimentRunner(
        ExperimentConfig(scale=args.scale, num_accesses=args.accesses)
    )

    print(f"Workload : {profile.name} (working set {profile.working_set}, "
          f"scaled 1/{args.scale})")
    print(f"Capacity : {args.capacity} (paper scale)")
    print(f"Accesses : {args.accesses} ({int(args.accesses / 3)} measured)")
    print()

    header = (f"{'design':<12} {'miss%':>7} {'hit lat':>8} {'miss lat':>9} "
              f"{'blk/acc':>8} {'speedup':>8}")
    print(header)
    print("-" * len(header))

    results = runner.compare_designs(
        ["unison", "alloy", "footprint", "ideal"], profile, args.capacity
    )
    for name in ("alloy", "footprint", "unison", "ideal"):
        result = results[name]
        print(f"{name:<12} {result.miss_ratio_percent:>6.1f}% "
              f"{result.average_hit_latency:>8.1f} "
              f"{result.average_miss_latency:>9.1f} "
              f"{result.offchip_blocks_per_access:>8.2f} "
              f"{result.speedup_vs_no_cache:>7.2f}x")

    unison = results["unison"]
    print()
    print(f"Unison way-prediction accuracy : {100 * unison.way_prediction_accuracy:.1f}%")
    print(f"Unison footprint accuracy      : {100 * unison.footprint_accuracy:.1f}%")
    print(f"Unison footprint overfetch     : {100 * unison.footprint_overfetch:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
