#!/usr/bin/env python3
"""Footprint prediction deep dive: accuracy, overfetch and page-size trade-offs.

Exercises the public predictor API directly (the same components the Unison
Cache model uses internally) to answer three questions the paper discusses in
Sections III-A and V-A:

1. How well does the (PC, offset)-indexed footprint predictor learn each
   workload's access patterns?
2. How much off-chip bandwidth do mispredictions waste (overfetch), and how
   much do they cost in extra misses (underprediction)?
3. How does the page size (960 B vs 1984 B Unison pages) shift that balance?

Usage::

    python examples/footprint_exploration.py [--workloads "Web Search" "Data Analytics"]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, ExperimentRunner, workload_by_name
from repro.sim.factory import make_design


def explore(workload_name: str, accesses: int, scale: int) -> None:
    profile = workload_by_name(workload_name)
    runner = ExperimentRunner(ExperimentConfig(scale=scale, num_accesses=accesses))
    trace = runner.build_trace(profile)
    warmup = trace[: int(len(trace) * 2 / 3)]
    measure = trace[int(len(trace) * 2 / 3):]

    print(f"\n=== {profile.name} ===")
    print(f"{'design':<14} {'miss%':>7} {'fp acc%':>8} {'overfetch%':>11} "
          f"{'underpred':>10} {'singletons':>11}")
    for design_name in ("unison", "unison-1984", "footprint"):
        design = make_design(design_name, "1GB", scale=scale)
        design.warm_up(warmup)
        design.run(measure)
        predictor = design.footprint_predictor
        print(f"{design_name:<14} {100 * design.cache_stats.miss_ratio:>6.1f}% "
              f"{100 * predictor.accuracy_ratio:>7.1f}% "
              f"{100 * predictor.overfetch_ratio:>10.1f}% "
              f"{design.cache_stats.underprediction_misses:>10d} "
              f"{design.cache_stats.singleton_bypasses:>11d}")

    # Show a few learned footprints for the 960B design.
    design = make_design("unison", "1GB", scale=scale)
    design.run(trace)
    table = design.footprint_predictor
    print(f"\nLearned footprint entries (of {table.updates} updates, "
          f"{table.trained_hits} trained lookups):")
    shown = 0
    for entries in table._sets.values():
        for (pc, offset), footprint in entries.items():
            print(f"  PC {pc:#x} offset {offset:2d} -> "
                  f"{footprint.popcount():2d} blocks {footprint.indices()}")
            shown += 1
            if shown >= 5:
                return
    return


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+",
                        default=["Web Search", "Data Analytics", "Software Testing"])
    parser.add_argument("--accesses", type=int, default=45_000)
    parser.add_argument("--scale", type=int, default=512)
    args = parser.parse_args()

    for workload in args.workloads:
        explore(workload, args.accesses, args.scale)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
