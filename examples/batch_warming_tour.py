#!/usr/bin/env python3
"""Tour of the vectorized batch functional-warming engine.

Functional warming only needs the *state* a warm stream leaves behind --
tags, dirty bits, predictor tables -- not per-access timing, so the batch
engine replays it through fused per-family kernels over a numpy structured
array instead of the scalar per-access object walk.  This tour shows the
contract from both ends:

1. decode a warm stream once into a structured record array
   (one ``np.frombuffer``-equivalent pack, no per-record objects);
2. warm one design per engine and time both (the batch engine clears
   10x on the larger default stream);
3. prove bit-identity: the post-warming ``StateSnapshot`` of both designs
   pickles to the same bytes, so every downstream measurement is
   byte-for-byte unaffected by which engine warmed the cache;
4. show the controls: ``REPRO_BATCH=0`` / ``set_batch_enabled(False)``
   (and the CLI's ``--no-batch-warming``) force the scalar path, and
   compositions without a fused kernel fall back automatically.

Usage::

    python examples/batch_warming_tour.py [--accesses 200000]
"""

from __future__ import annotations

import argparse
import pickle
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import (
    numpy_available,
    records_to_array,
    set_batch_enabled,
    warm_design,
)
from repro.sim.factory import make_design
from repro.workloads.cloudsuite import workload_by_name
from repro.workloads.generator import SyntheticWorkload


def snapshot_bytes(design) -> bytes:
    return pickle.dumps(design.snapshot_state().state)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--design", default="unison")
    parser.add_argument("--capacity", default="256MB")
    parser.add_argument("--scale", type=int, default=512)
    args = parser.parse_args()

    if not numpy_available():
        print("numpy is not installed -- the batch engine needs it; "
              "everything else runs scalar (--no-batch-warming).")
        return 1

    # 1. One warm stream, decoded once into a structured array.
    profile = workload_by_name("Web Search")
    profile = profile.scaled(
        max(profile.region_size * 64,
            profile.working_set_bytes // args.scale)
    )
    print(f"Generating {args.accesses:,} warm accesses (Web Search)...")
    trace = SyntheticWorkload(profile, num_cores=4,
                              seed=7).generate(args.accesses)
    array = records_to_array(trace)
    print(f"Structured array: {array.nbytes:,} bytes, dtype {array.dtype}\n")

    # 2. Warm one design per engine, timed.
    scalar = make_design(args.design, args.capacity, scale=args.scale)
    started = time.perf_counter()
    scalar.warm_up(trace)
    t_scalar = time.perf_counter() - started

    batch = make_design(args.design, args.capacity, scale=args.scale)
    started = time.perf_counter()
    engine = warm_design(batch, array)
    t_batch = time.perf_counter() - started

    print(f"{args.design} @ {args.capacity} (scale {args.scale}):")
    print(f"  scalar warm-up: {t_scalar:6.2f}s "
          f"({args.accesses / t_scalar:>10,.0f} acc/s)")
    print(f"  batch  warm-up: {t_batch:6.2f}s "
          f"({args.accesses / t_batch:>10,.0f} acc/s)  engine={engine}")
    print(f"  speedup: {t_scalar / t_batch:.1f}x\n")

    # 3. Bit-identity: same post-warming state, byte for byte.
    identical = snapshot_bytes(scalar) == snapshot_bytes(batch)
    print(f"Post-warming StateSnapshot bit-identical: {identical}")
    if not identical:
        return 1

    # 4. The controls: force the scalar engine and get the same state again.
    set_batch_enabled(False)
    try:
        forced = make_design(args.design, args.capacity, scale=args.scale)
        engine = warm_design(forced, trace)
        print(f"With batch disabled, warm_design ran engine={engine}; "
              f"state still identical: "
              f"{snapshot_bytes(forced) == snapshot_bytes(batch)}")
    finally:
        set_batch_enabled(None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
