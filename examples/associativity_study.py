#!/usr/bin/env python3
"""Associativity and way-prediction study (Figure 5 and Section III-A.5/6).

Direct-mapped page-based caches suffer heavily from conflicts (the paper's
analytical model puts the conflict probability ~500x higher than for a
block-based cache of the same size).  This example declares the sweep's
associativity axis as :class:`repro.SweepSpec` *overrides* -- one grid cell
per ways count, every cell replaying the same cached trace -- and
quantifies, on a workload of your choice:

* how the miss ratio changes from direct-mapped to 4-way to 32-way, and
* what the way predictor contributes: its accuracy and how many extra cycles
  mispredictions would add to the average hit.

Usage::

    python examples/associativity_study.py [--workload "Web Serving"] [--capacity 1GB]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, SweepSpec, run_sweep

ASSOCIATIVITIES = (1, 4, 32)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="Web Serving")
    parser.add_argument("--capacity", default="1GB")
    parser.add_argument("--accesses", type=int, default=45_000)
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    args = parser.parse_args()

    spec = SweepSpec(
        designs=("unison",),
        workloads=(args.workload,),
        capacities=(args.capacity,),
        config=ExperimentConfig(scale=args.scale, num_accesses=args.accesses),
        # Labels default to the canonical variant names (unison-dm, unison,
        # unison-32way; unison-<N>way for anything else).
        overrides=tuple({"associativity": ways} for ways in ASSOCIATIVITIES),
    )
    profile = spec.workloads[0]

    print(f"Unison Cache associativity sweep -- {profile.name} @ {args.capacity} "
          f"(scale 1/{args.scale})\n")
    sweep = run_sweep(spec, workers=args.jobs)
    results = dict(zip(ASSOCIATIVITIES, sweep))

    print(f"{'ways':>5} {'design':>14} {'miss%':>8} {'hit lat':>9} "
          f"{'WP acc%':>9} {'speedup':>9}")
    print("-" * 60)
    for ways, result in sorted(results.items()):
        wp = (f"{100 * result.way_prediction_accuracy:>8.1f}%"
              if ways > 1 else "     n/a")
        print(f"{ways:>5} {result.design:>14} {result.miss_ratio_percent:>7.1f}% "
              f"{result.average_hit_latency:>9.1f} {wp} "
              f"{result.speedup_vs_no_cache:>8.2f}x")

    one_way = results[1].miss_ratio
    four_way = results[4].miss_ratio
    thirtytwo = results[32].miss_ratio
    print()
    if one_way > 0:
        print(f"4-way removes {100 * (one_way - four_way) / one_way:.0f}% of the "
              f"direct-mapped misses; 32-way removes only a further "
              f"{100 * (four_way - thirtytwo) / max(one_way, 1e-9):.0f}% "
              f"(diminishing returns, Section V-B).")
    print("Way prediction keeps the 4-way hit latency within a couple of cycles "
          "of direct-mapped by fetching only the predicted way (Section III-A.6).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
