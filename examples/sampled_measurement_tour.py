#!/usr/bin/env python3
"""Tour of checkpointed sampled measurement.

Reproduces a fig6-style design comparison twice -- once by full trace
replay, once by checkpointed windowed sampling -- and shows that the
sampled run agrees with the full one while simulating a fraction of the
accesses:

1. run a full-replay sweep of Unison vs Alloy on one workload;
2. run the *same* grid sampled, just by adding ``sampling=SamplingConfig()``
   to the :class:`repro.SweepSpec`;
3. compare the two result sets side by side (miss ratio, speedup, accesses
   actually simulated);
4. use :class:`repro.WindowedSampler` directly for what sweeps cannot show:
   per-window matched-pair deltas between designs with a 95% confidence
   interval, and adaptive termination.

Usage::

    python examples/sampled_measurement_tour.py [--accesses 200000]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, SamplingConfig, SweepSpec, WindowedSampler, run_sweep
from repro.workloads.cloudsuite import workload_by_name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--scale", type=int, default=512)
    args = parser.parse_args()

    config = ExperimentConfig(scale=args.scale, num_accesses=args.accesses,
                              num_cores=4, seed=1)
    sampling = SamplingConfig(
        checkpoint_accesses=args.accesses // 25,
        warmup_accesses=1_000,
        window_accesses=max(2_000, args.accesses // 150),
        min_windows=8,
        max_windows=16,
    )

    # 1 + 2. The same declarative grid, full and sampled: the only
    #        difference is the ``sampling=`` axis.
    grid = dict(
        designs=("unison", "alloy"),
        workloads=("Web Search",),
        capacities=("1GB",),
        config=config,
    )
    print(f"Full replay of {args.accesses} accesses per cell...")
    full = run_sweep(SweepSpec(**grid))
    print("Sampled replay of the same grid...")
    sampled = run_sweep(SweepSpec(**grid, sampling=sampling))

    # 3. Side-by-side agreement.
    print()
    print("design  | full miss% | sampled miss% | full speedup | sampled "
          "| simulated")
    for full_result, sampled_result in zip(full, sampled):
        fraction = sampled_result.extra["sampling_fraction"]
        print(f"{full_result.design:<7} | {full_result.miss_ratio_percent:10.2f} "
              f"| {sampled_result.miss_ratio_percent:13.2f} "
              f"| {full_result.speedup_vs_no_cache:12.3f} "
              f"| {sampled_result.speedup_vs_no_cache:7.3f} "
              f"| {100 * fraction:.1f}% of the trace")

    # 4. The sampler directly: shared windows across designs give
    #    matched-pair deltas far tighter than differencing two runs.
    run = WindowedSampler(sampling, config=config).compare(
        ["unison", "alloy"], workload_by_name("Web Search"), "1GB")
    delta = run.delta("speedup_vs_no_cache", "unison", "alloy").interval()
    stopped = "converged" if run.converged else "used its full window budget"
    print()
    print(f"Matched-pair comparison over {run.windows_measured} shared "
          f"windows ({stopped}):")
    print(f"  Unison speeds up {delta.mean:+.3f} +- {delta.half_width:.3f} "
          f"over Alloy (95% CI)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
