#!/usr/bin/env python3
"""Full-system path: raw accesses -> L1/L2 hierarchy -> DRAM cache -> memory.

The headline experiments drive the DRAM cache with a synthetic L2-miss stream
directly (see DESIGN.md).  This example instead exercises the complete
substrate stack the way a user replaying their own raw traces would:

1. a synthetic *raw* access stream for a 16-core CMP,
2. filtered through per-core L1 data caches and the shared 4 MB L2
   (``repro.cache.hierarchy``),
3. with the surviving misses serviced by a DRAM cache design behind the
   16x4 crossbar (``repro.cpu.cmp``),
4. reporting the paper's throughput metric (user instructions per cycle)
   plus per-level hit statistics.

Usage::

    python examples/full_system_simulation.py [--design unison] [--accesses 40000]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SystemConfig, workload_by_name
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.cmp import TraceDrivenCmp
from repro.sim.factory import make_design
from repro.workloads.generator import SyntheticWorkload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="unison",
                        choices=["unison", "alloy", "footprint", "ideal", "no_cache"])
    parser.add_argument("--workload", default="Data Serving")
    parser.add_argument("--capacity", default="1GB")
    parser.add_argument("--accesses", type=int, default=40_000,
                        help="raw (pre-L1) accesses to generate")
    parser.add_argument("--scale", type=int, default=512)
    args = parser.parse_args()

    system = SystemConfig()
    profile = workload_by_name(args.workload).scaled("32MB")
    workload = SyntheticWorkload(profile, num_cores=system.num_cores, seed=7)

    print(f"Generating {args.accesses} raw accesses for {profile.name} ...")
    raw = workload.generate(args.accesses)

    print("Filtering through the L1/L2 hierarchy ...")
    hierarchy = CacheHierarchy(system)
    l2_misses = list(hierarchy.filter_stream(raw))
    hierarchy_stats = hierarchy.stats()
    l1_hits = hierarchy_stats.get("l1d.hits")
    l1_misses = hierarchy_stats.get("l1d.misses")
    print(f"  L1D: {l1_hits} hits / {l1_misses} misses "
          f"({100 * l1_hits / max(1, l1_hits + l1_misses):.1f}% hit rate)")
    print(f"  L2 : miss ratio {100 * hierarchy.l2.miss_ratio:.1f}%  ->  "
          f"{len(l2_misses)} requests reach the DRAM cache")

    print(f"Running the {args.design} DRAM cache at {args.capacity} "
          f"(scale 1/{args.scale}) ...")
    dram_cache = make_design(args.design, args.capacity, scale=args.scale,
                             num_cores=system.num_cores)
    cmp = TraceDrivenCmp(dram_cache, config=system)
    cmp.run(l2_misses)

    stats = dram_cache.cache_stats
    print()
    print(f"DRAM cache miss ratio       : {100 * stats.miss_ratio:.1f}%")
    print(f"Average DRAM cache latency  : {stats.average_access_latency:.1f} cycles")
    print(f"Off-chip blocks per request : {stats.offchip_blocks_per_access:.2f}")
    print(f"Stacked-DRAM row activations: {dram_cache.stacked.row_activations}")
    print(f"Off-chip row activations    : {dram_cache.memory.row_activations}")
    print(f"System throughput (user IPC): {cmp.user_instructions_per_cycle:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
