#!/usr/bin/env python3
"""Tour of the run telemetry subsystem: spans, ledger, heartbeats, events.

Walks the whole observability loop:

1. run a queued sampled sweep with ``REPRO_TELEMETRY=1`` -- executor,
   sampler, trace store, checkpoint store, and queue worker all record
   into the run ledger and per-run JSONL manifests;
2. query the ledger the way ``repro runs show <token>`` does: per-phase
   wall-clock (trace_load / warmup / measure / assemble), accesses/sec,
   and the trace-store and checkpoint hit rates, aggregated over every
   run of the sweep;
3. replay one run's manifest, including the per-window
   stopper-convergence events the sampler traces;
4. prove the no-op contract: re-run the same spec with telemetry
   disabled and show the ResultSet is bit-identical.

The tour isolates itself in a temporary trace-store root so it never
touches (or depends on) your real caches.

Usage::

    python examples/telemetry_tour.py [--accesses 8000]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=8000)
    parser.add_argument("--scale", type=int, default=2048)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-telemetry-tour-") as root:
        os.environ["REPRO_TRACE_STORE"] = root
        os.environ["REPRO_TELEMETRY"] = "1"

        from repro import ExperimentConfig, SamplingConfig, SweepSpec
        from repro.obs.core import LEDGER_FILENAME, query_root
        from repro.obs.ledger import RunLedger, summarize
        from repro.obs.manifest import find_manifest, read_manifest
        from repro.queue import SweepService

        spec = SweepSpec(
            designs=("unison", "alloy"),
            workloads=("Web Search",),
            capacities=("512MB",),
            config=ExperimentConfig(scale=args.scale,
                                    num_accesses=args.accesses),
            sampling=SamplingConfig(window_accesses=400, max_windows=8,
                                    min_windows=4),
        )

        print("== 1. instrumented queued sampled sweep ==")
        service = SweepService()
        token = service.submit(spec).token
        observed = service.run(spec)
        print(f"sweep {token}: {len(observed)} results\n")

        print("== 2. the run ledger (what `repro runs show` reads) ==")
        telemetry_dir = query_root()
        with RunLedger(telemetry_dir / LEDGER_FILENAME) as ledger:
            scope, rows = ledger.resolve(token)
            summary = summarize(ledger, rows)
            for row in rows:
                print(f"  {row['run_id']}  {row['kind']:<8} "
                      f"{row['status']}")
            print(f"aggregate over {summary['runs']} runs "
                  f"({summary['wall_seconds']:.2f}s wall-clock):")
            for name, (seconds, count) in summary["phases"].items():
                print(f"  {name:<12} {seconds:8.3f}s  x{count}")
            print(f"  accesses/sec        "
                  f"{summary.get('accesses_per_sec', 0):,.0f}")
            for rate in ("trace_store_hit_rate", "checkpoint_hit_rate"):
                if rate in summary:
                    print(f"  {rate:<20}{100 * summary[rate]:.1f}%")
            windows_run = next(row["run_id"] for row in rows
                               if row["kind"] == "windows")
        print()

        print("== 3. a window-batch job's JSONL manifest ==")
        manifest = find_manifest(telemetry_dir, windows_run)
        _print_manifest(manifest)
        print()

        print("== 3b. per-window convergence trace (adaptive sampled run) ==")
        from repro.obs.core import start_run
        from repro.sampling import WindowedSampler
        from repro.workloads.cloudsuite import workload_by_name

        sampler = WindowedSampler(spec.sampling, config=spec.config)
        with start_run("trial", kind_detail="sample",
                       design="unison") as run:
            sampler.compare(["unison"], workload_by_name("Web Search"),
                            "512MB")
            adaptive_run = run.run_id
        _print_manifest(find_manifest(telemetry_dir, adaptive_run))
        print()

        print("== 4. bit-identity with telemetry off ==")
        del os.environ["REPRO_TELEMETRY"]
        from repro.sim.executor import SweepExecutor

        plain = SweepExecutor(workers=1).run(spec)
        identical = (plain == observed
                     and plain.to_json() == observed.to_json())
        print(f"telemetry-off ResultSet bit-identical: {identical}")
        return 0 if identical else 1


def _print_manifest(manifest: Path) -> None:
    from repro.obs.manifest import read_manifest

    for line in read_manifest(manifest):
        event = line.get("event")
        if event in ("start", "end"):
            print(f"  {event}: "
                  f"{json.dumps(line.get('labels') or line.get('metrics'))}")
        elif event == "phase":
            print(f"  phase {line['name']}: {line['seconds']:.3f}s")
        elif event == "window":
            errors = {key: value for key, value in line.items()
                      if key.startswith("rel_err_")}
            print(f"  window {line['index']} "
                  f"(measured {line['measured']}): {errors}")


if __name__ == "__main__":
    raise SystemExit(main())
