#!/usr/bin/env python3
"""Tour of durable work-queue sweeps: submit, crash, resume, archive.

Walks the full lifecycle of a queue-backed sweep and demonstrates every
durability guarantee the subsystem makes:

1. plan a sweep into idempotent on-disk jobs (``SweepService.submit``) --
   sampled cells decompose into window-batch jobs, full-replay cells stay
   whole;
2. start a standalone worker process (the same thing ``repro queue work``
   runs), let it finish part of the sweep, and ``kill -9`` it mid-job;
3. resume: dead leases are reclaimed instantly, only unfinished jobs run,
   and the assembled ResultSet is bit-identical to a serial
   ``SweepExecutor(workers=1)`` run of the same spec;
4. re-run the sweep: the result archive answers without simulating
   anything, and re-submitting adds zero jobs.

The tour isolates itself in a temporary trace-store root so it never
touches (or depends on) your real caches.

Usage::

    python examples/queue_sweep_tour.py [--accesses 12000]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=12_000)
    parser.add_argument("--scale", type=int, default=2048)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-queue-tour-") as root:
        os.environ["REPRO_TRACE_STORE"] = root

        from repro import ExperimentConfig, SamplingConfig, SweepSpec
        from repro.queue import SweepService
        from repro.sim.executor import SweepExecutor

        spec = SweepSpec(
            designs=("unison", "alloy"),
            workloads=("Web Search",),
            capacities=("512MB",),
            config=ExperimentConfig(scale=args.scale,
                                    num_accesses=args.accesses),
            sampling=SamplingConfig(window_accesses=400, max_windows=24,
                                    min_windows=4),
        )

        print("== 1. reference: serial in-memory sweep ==")
        serial = SweepExecutor(workers=1).run(spec)
        print(serial.table())

        print("\n== 2. plan the same sweep into durable jobs ==")
        service = SweepService()
        outcome = service.submit(spec)
        print(f"sweep {outcome.token}")
        print(f"  {outcome.total_jobs} jobs for {outcome.total_trials} "
              f"trials (sampled cells decompose into window batches)")
        print(f"  job store: {service.db_path}")

        print("\n== 3. start a worker, then kill -9 it mid-sweep ==")
        env = dict(os.environ, PYTHONPATH=str(SRC))
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "queue", "work",
             "--throttle", "0.5"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            while True:
                with service.store() as store:
                    counts = store.counts(outcome.token)
                if 1 <= counts["done"] < outcome.total_jobs:
                    break
                if worker.poll() is not None:
                    break  # tiny sweep drained before we could kill
                time.sleep(0.05)
            if worker.poll() is None:
                os.kill(worker.pid, signal.SIGKILL)
                print(f"  SIGKILLed worker {worker.pid} after "
                      f"{counts['done']}/{outcome.total_jobs} jobs "
                      f"({counts['leased']} in flight)")
        finally:
            worker.wait()

        print("\n== 4. resume: reclaim the dead lease, finish, assemble ==")
        resumed = service.run(spec)
        with service.store() as store:
            timing = store.timing(outcome.token)
        print(f"  {timing['attempts']} attempts over "
              f"{timing['jobs_timed']} jobs "
              f"(pre-kill completions were not re-run)")
        print(f"  bit-identical to serial: {resumed == serial}")

        print("\n== 5. re-run: the archive answers, zero jobs execute ==")
        start = time.perf_counter()
        archived = service.run(spec)
        elapsed = time.perf_counter() - start
        again = service.submit(spec)
        print(f"  re-submit created {again.new_jobs} new jobs")
        print(f"  archived ResultSet returned in {elapsed * 1000:.1f} ms, "
              f"identical: {archived == serial}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
