#!/usr/bin/env python3
"""Tour of the design-space autotuner (``repro tune``).

The composed-design grid -- tag organization x hit predictor x fetch
policy x writeback policy x replacement policy -- holds hundreds of legal
hybrids the paper never evaluated.  This tour drives the search subsystem
end to end on a deliberately tiny budget:

1. declare a :class:`repro.search.SearchSpace` and enumerate the legal
   combinations its constraint predicates leave standing;
2. run a seeded successive-halving search: every rung re-measures the
   survivors at a wider CI budget (more sampling windows, tighter target
   error) and prunes designs whose confidence interval is dominated;
3. inspect the CI-aware Pareto frontier over miss ratio, speedup, and
   SRAM overhead, including which paper baselines each hybrid dominates;
4. re-run the winning design *by its registered name* -- search winners
   become first-class named designs -- and confirm the re-run reproduces
   the archived search measurement bit-for-bit.

Every trial is an idempotent queue job: re-running the same search (or
resuming after a crash) replays finished rungs from the archive and
executes zero new jobs.

Usage::

    python examples/design_search_tour.py [--candidates 6] [--jobs 1]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.search import TuneConfig, TuneSearch, default_space


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="Web Search")
    parser.add_argument("--capacity", default="1GB")
    parser.add_argument("--candidates", type=int, default=6)
    parser.add_argument("--rungs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    args = parser.parse_args()

    # ---------------------------------------------------------------- #
    # 1. The declarative search space
    # ---------------------------------------------------------------- #
    space = default_space()
    print(f"search space: {space.describe()}")
    print(f"  {len(space)} legal combinations after constraints\n")

    # ---------------------------------------------------------------- #
    # 2. A tiny successive-halving search
    # ---------------------------------------------------------------- #
    config = TuneConfig(
        workload=args.workload,
        capacity=args.capacity,
        seed=args.seed,
        num_candidates=args.candidates,
        rungs=args.rungs,
        # Tour-sized fidelity: seconds, not minutes.
        scale=4096,
        num_accesses=6_000,
        window_accesses=500,
        warmup_accesses=500,
        checkpoint_accesses=2_000,
        min_windows=2,
        base_windows=2,
        base_relative_error=0.5,
    )
    queue_dir = Path(tempfile.mkdtemp(prefix="repro-tune-tour-"))
    search = TuneSearch(config, queue_dir=queue_dir)
    state = search.run(workers=args.jobs)
    print(f"search {state.token}: status={state.status}")
    for rung in state.rungs:
        print(f"  rung {rung['rung']}: {len(rung['designs'])} designs at "
              f"max_windows={rung['max_windows']} -> "
              f"{len(rung['survivors'])} survive "
              f"({len(rung['pruned'])} CI-pruned)")

    # ---------------------------------------------------------------- #
    # 3. The CI-aware Pareto frontier
    # ---------------------------------------------------------------- #
    artifact = state.frontier
    print("\nfrontier (miss ratio asc):")
    ranked = sorted(artifact["designs"],
                    key=lambda d: d["miss_ratio"]["mean"])
    for design in ranked:
        if not design["on_frontier"]:
            continue
        miss, speed = design["miss_ratio"], design["speedup"]
        beats = ", ".join(design["dominates_baselines"]) or "-"
        print(f"  {design['name']:<16} [{design['kind']}] "
              f"miss {miss['mean']:.4f}±{miss['half_width']:.4f}  "
              f"speedup {speed['mean']:.3f}±{speed['half_width']:.3f}  "
              f"sram {design['sram_overhead_bytes'] / 1024:.1f}KB  "
              f"beats: {beats}")
    print(f"winners: {', '.join(artifact['winners']) or '-'}")

    # ---------------------------------------------------------------- #
    # 4. Re-run the winner by its registered name, bit-identically
    # ---------------------------------------------------------------- #
    if state.winners:
        report = search.verify_winner(state)
        verdict = "bit-identical" if report["identical"] else "MISMATCH"
        print(f"\nre-run of {report['design']} by registered name: "
              f"{verdict} (miss {report['miss_ratio']:.6f} vs archived "
              f"{report['archived_miss_ratio']:.6f})")
        if not report["identical"]:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
