"""Sampled fig6/fig7 artifacts with 95% confidence intervals.

The paper's headline figures regenerated through the *sampled* pipeline
(checkpointed windowed measurement, :mod:`repro.sampling`) instead of
full replay: each design/workload cell reports mean ± 95% CI half-width
from the measured windows.  These are the first figures ``repro serve``
renders -- the archived records carry the same
``sampling_*_half_width`` extras the SVG error bars are drawn from.

Artifacts: ``fig6_miss_ratio_sampled.txt`` and
``fig7_performance_sampled.txt`` under ``benchmarks/results/``.
"""

from __future__ import annotations

import math

import pytest

from conftest import BENCH_ACCESSES, bench_config, format_table, write_report

from repro.sampling.windows import SamplingConfig
from repro.sim.executor import run_sweep
from repro.sim.spec import SweepSpec
from repro.workloads.cloudsuite import CLOUDSUITE_WORKLOADS

DESIGNS = ("alloy", "footprint", "unison")
CAPACITY = "1GB"


def sampling_config() -> SamplingConfig:
    """Windows sized to the benchmark trace length.

    ~1/8 of the trace builds the warm checkpoint, then up to 12 windows
    of 1/40 of the trace each (with one window of functional warming),
    stopping early once the 95% CI tightens below 5% of the mean.
    """
    window = max(200, BENCH_ACCESSES // 40)
    return SamplingConfig(
        window_accesses=window,
        warmup_accesses=window,
        checkpoint_accesses=BENCH_ACCESSES // 8,
        min_windows=4,
        max_windows=12,
        target_relative_error=0.05,
    )


def _measure():
    spec = SweepSpec(
        designs=DESIGNS,
        workloads=CLOUDSUITE_WORKLOADS,
        capacities=(CAPACITY,),
        config=bench_config(),
        sampling=sampling_config(),
    )
    results = {}
    for result in run_sweep(spec):
        results[(result.workload, result.design)] = result
    return results


def _cell(mean: float, half_width: float, scale: float = 1.0,
          fmt: str = "{:.2f}") -> str:
    return (fmt.format(mean * scale) + " ±" + fmt.format(half_width * scale))


@pytest.mark.benchmark(group="fig6")
def test_sampled_figures_with_confidence(benchmark, results_dir):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    workloads = [profile.name for profile in CLOUDSUITE_WORKLOADS]

    # ------------------------------------------------------------------ #
    # fig6: miss ratio (%) mean ± 95% CI half-width per design
    # ------------------------------------------------------------------ #
    rows = []
    for workload in workloads:
        row = [workload, CAPACITY]
        for design in DESIGNS:
            result = results[(workload, design)]
            row.append(_cell(result.miss_ratio,
                             result.extra["sampling_miss_ratio_half_width"],
                             scale=100.0))
        result = results[(workload, DESIGNS[0])]
        row.append(f"{result.extra['sampling_windows']:.0f}")
        row.append(f"{100 * result.extra['sampling_fraction']:.1f}%")
        rows.append(row)
    write_report(results_dir, "fig6_miss_ratio_sampled", format_table(
        ["Workload", "Capacity", "Alloy miss%", "Footprint miss%",
         "Unison miss%", "Windows", "Sampled"],
        rows,
    ))

    # ------------------------------------------------------------------ #
    # fig7: speedup vs no cache, mean ± 95% CI half-width per design
    # ------------------------------------------------------------------ #
    rows = []
    for workload in workloads:
        row = [workload, CAPACITY]
        for design in DESIGNS:
            result = results[(workload, design)]
            row.append(_cell(result.speedup_vs_no_cache,
                             result.extra["sampling_speedup_half_width"]))
        rows.append(row)
    write_report(results_dir, "fig7_performance_sampled", format_table(
        ["Workload", "Capacity", "Alloy", "Footprint", "Unison"],
        rows,
    ))

    # --- Shape assertions ------------------------------------------------ #
    for (workload, design), result in results.items():
        # Every sampled cell carries a finite, positive-width 95% CI and
        # a real speedup -- exactly what the dashboard's error bars need.
        half = result.extra["sampling_miss_ratio_half_width"]
        assert math.isfinite(half) and half >= 0
        assert math.isfinite(result.extra["sampling_speedup_half_width"])
        assert result.speedup_vs_no_cache is not None
        assert result.speedup_vs_no_cache > 0.5
        assert 0.0 < result.extra["sampling_fraction"] < 1.0
        assert result.extra["sampling_windows"] >= 4

    # The paper's qualitative ordering survives sampling noise: Alloy's
    # miss ratio is the worst of the three designs on every workload.
    for workload in workloads:
        alloy = results[(workload, "alloy")].miss_ratio
        assert alloy >= results[(workload, "footprint")].miss_ratio
        assert alloy >= results[(workload, "unison")].miss_ratio
