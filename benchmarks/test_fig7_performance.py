"""Figure 7 -- performance (speedup) of Alloy, Footprint, Unison and Ideal.

Speedups are normalized to a system without a DRAM cache, for the five
CloudSuite workloads across 128 MB - 1 GB.  The qualitative shape to
reproduce:

* every design speeds the system up, and Ideal bounds them from above;
* for small caches Footprint Cache is competitive (it pays only a small SRAM
  tag latency), but its advantage shrinks as capacity grows because the tag
  latency grows with capacity;
* at 1 GB Unison Cache outperforms Alloy Cache clearly (paper: ~14%) and is
  at least on par with Footprint Cache (paper: ~2%);
* Data Serving shows the largest absolute speedups (most memory-bound).
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.workloads.cloudsuite import CLOUDSUITE_WORKLOADS

CAPACITIES = ("128MB", "256MB", "512MB", "1GB")
DESIGNS = ("alloy", "footprint", "unison", "ideal")


def _measure(trace_cache):
    results = {}
    for profile in CLOUDSUITE_WORKLOADS:
        for capacity in CAPACITIES:
            for design in DESIGNS:
                result = trace_cache.run(design, profile, capacity)
                results[(profile.name, capacity, design)] = result.speedup_vs_no_cache
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_performance_comparison(benchmark, trace_cache, results_dir):
    results = benchmark.pedantic(_measure, args=(trace_cache,), rounds=1, iterations=1)

    rows = []
    for profile in CLOUDSUITE_WORKLOADS:
        for capacity in CAPACITIES:
            rows.append([
                profile.name, capacity,
                f"{results[(profile.name, capacity, 'alloy')]:.2f}",
                f"{results[(profile.name, capacity, 'footprint')]:.2f}",
                f"{results[(profile.name, capacity, 'unison')]:.2f}",
                f"{results[(profile.name, capacity, 'ideal')]:.2f}",
            ])
    write_report(results_dir, "fig7_performance", format_table(
        ["Workload", "Capacity", "Alloy", "Footprint", "Unison", "Ideal"],
        rows,
    ))

    # 1. Every design provides a speedup over no DRAM cache, and Ideal is an
    #    upper bound (within a small tolerance for measurement noise).
    for (workload, capacity, design), speedup in results.items():
        assert speedup > 0.95, f"{design} slowed {workload} down at {capacity}"
        assert speedup <= results[(workload, capacity, "ideal")] + 0.05

    # 2. At 1GB, Unison beats Alloy on every workload, and clearly on average
    #    (paper: ~14% mean improvement).
    unison_vs_alloy = []
    for profile in CLOUDSUITE_WORKLOADS:
        unison = results[(profile.name, "1GB", "unison")]
        alloy = results[(profile.name, "1GB", "alloy")]
        assert unison >= alloy * 0.98
        unison_vs_alloy.append(unison / alloy)
    mean_gain = sum(unison_vs_alloy) / len(unison_vs_alloy)
    assert mean_gain > 1.05

    # 3. At 1GB, Unison is at least on par with Footprint Cache on average.
    unison_vs_fc = [
        results[(p.name, "1GB", "unison")] / results[(p.name, "1GB", "footprint")]
        for p in CLOUDSUITE_WORKLOADS
    ]
    assert sum(unison_vs_fc) / len(unison_vs_fc) > 0.98

    # 4. Footprint Cache's edge over Unison shrinks (or reverses) as capacity
    #    grows, because its SRAM tag latency grows with capacity.
    deltas_small = []
    deltas_large = []
    for profile in CLOUDSUITE_WORKLOADS:
        deltas_small.append(results[(profile.name, "128MB", "footprint")]
                            - results[(profile.name, "128MB", "unison")])
        deltas_large.append(results[(profile.name, "1GB", "footprint")]
                            - results[(profile.name, "1GB", "unison")])
    assert (sum(deltas_large) / len(deltas_large)
            <= sum(deltas_small) / len(deltas_small) + 0.02)

    # 5. Data Serving is the most memory-bound workload and shows the largest
    #    ideal speedup (the paper plots it on its own axis).
    ideal_1gb = {p.name: results[(p.name, "1GB", "ideal")] for p in CLOUDSUITE_WORKLOADS}
    assert max(ideal_1gb, key=ideal_1gb.get) == "Data Serving"
