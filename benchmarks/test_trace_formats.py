"""Trace codec benchmark: the binary format's size and load-speed claims.

Acceptance criteria for the streaming trace subsystem: on a 1M-access trace
the binary format must be >= 5x smaller on disk and >= 3x faster to load
than the line-oriented text format.  (Measured with the collector disabled,
as ``timeit`` does: both codecs allocate the same million record objects,
and collector pauses otherwise dominate the run-to-run variance.)
"""

from __future__ import annotations

import gc
import time

from conftest import write_report

from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.trace.binfmt import read_trace_bin, write_trace_bin
from repro.trace.io import read_trace, write_trace
from repro.workloads.cloudsuite import workload_by_name

#: Access count the PR's acceptance criterion is stated over.
TRACE_ACCESSES = 1_000_000
SIZE_RATIO_FLOOR = 5.0
LOAD_RATIO_FLOOR = 3.0


def _timed(fn, repeats=3):
    """Best-of-N wall time with the cyclic collector paused (timeit-style)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
        del result
        result = None
    return best


def test_binary_format_size_and_load_speed(results_dir, tmp_path):
    runner = ExperimentRunner(ExperimentConfig(
        scale=512, num_accesses=TRACE_ACCESSES, num_cores=4, seed=1,
    ))
    trace = runner.build_trace(workload_by_name("Web Search"))

    text_path = tmp_path / "trace.trace"
    bin_path = tmp_path / "trace.rptr"
    text_write = _timed(lambda: write_trace(text_path, trace), repeats=1)
    bin_write = _timed(lambda: write_trace_bin(bin_path, trace, num_cores=4),
                       repeats=1)

    text_bytes = text_path.stat().st_size
    bin_bytes = bin_path.stat().st_size
    size_ratio = text_bytes / bin_bytes

    # Correctness before speed: both codecs round-trip losslessly.
    assert read_trace_bin(bin_path) == trace
    assert read_trace(text_path) == trace

    text_load = _timed(lambda: read_trace(text_path))
    bin_load = _timed(lambda: read_trace_bin(bin_path))
    load_ratio = text_load / bin_load

    write_report(results_dir, "trace_formats", [
        f"trace: Web Search, {TRACE_ACCESSES} accesses, 4 cores, scale 512",
        "",
        f"text   size {text_bytes:>10} B   write {text_write:5.2f} s   "
        f"load {text_load:5.2f} s",
        f"binary size {bin_bytes:>10} B   write {bin_write:5.2f} s   "
        f"load {bin_load:5.2f} s",
        "",
        f"size ratio (text/binary): {size_ratio:.2f}x "
        f"(required >= {SIZE_RATIO_FLOOR}x)",
        f"load ratio (text/binary): {load_ratio:.2f}x "
        f"(required >= {LOAD_RATIO_FLOOR}x)",
    ])

    assert size_ratio >= SIZE_RATIO_FLOOR, (
        f"binary format only {size_ratio:.2f}x smaller than text "
        f"(need >= {SIZE_RATIO_FLOOR}x)"
    )
    assert load_ratio >= LOAD_RATIO_FLOOR, (
        f"binary format only {load_ratio:.2f}x faster to load than text "
        f"(need >= {LOAD_RATIO_FLOOR}x)"
    )
