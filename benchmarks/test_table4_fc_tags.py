"""Table IV -- Footprint Cache SRAM tag size and lookup latency vs capacity."""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.config.cache_configs import footprint_tag_array_for_capacity

_PAPER_TABLE_IV = {
    "128MB": (0.8, 6),
    "256MB": (1.58, 9),
    "512MB": (3.12, 11),
    "1GB": (6.2, 16),
    "2GB": (12.5, 25),
    "4GB": (25.0, 36),
    "8GB": (50.0, 48),
}


def _compute():
    return {
        capacity: footprint_tag_array_for_capacity(capacity)
        for capacity in _PAPER_TABLE_IV
    }


def test_table4_footprint_tag_scaling(benchmark, results_dir):
    models = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = []
    for capacity, (paper_mb, paper_latency) in _PAPER_TABLE_IV.items():
        model = models[capacity]
        rows.append([
            capacity,
            f"{paper_mb:.2f}MB / {paper_latency}cyc",
            f"{model.tag_megabytes:.2f}MB / {model.lookup_latency_cycles}cyc",
        ])
    write_report(results_dir, "table4_fc_tag_array",
                 format_table(["Cache size", "Paper (tags/latency)",
                               "Measured (tags/latency)"], rows))

    for capacity, (paper_mb, paper_latency) in _PAPER_TABLE_IV.items():
        model = models[capacity]
        assert model.tag_megabytes == pytest.approx(paper_mb, abs=0.01)
        assert model.lookup_latency_cycles == paper_latency

    # The scalability claim behind the paper: the FC tag array grows roughly
    # linearly with capacity and becomes impractical (tens of MB) at 8GB,
    # while Unison Cache needs no SRAM tags at any capacity.
    sizes = [models[c].tag_bytes for c in _PAPER_TABLE_IV]
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] > 40 * 1024 ** 2
