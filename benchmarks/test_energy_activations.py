"""Section V-D -- energy considerations via the row-activation proxy.

The paper argues that Unison and Footprint Cache reduce DRAM energy because
off-chip transfers happen at footprint granularity: one off-chip row
activation covers ~10 blocks, whereas Alloy Cache activates a row for almost
every transferred block.  Row activations are the most energy-expensive DRAM
operation, so activations-per-transferred-block is the proxy this benchmark
reproduces.
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.workloads.cloudsuite import data_serving, web_search

WORKLOADS = (web_search, data_serving)
DESIGNS = ("alloy", "unison", "footprint")


def _measure(trace_cache):
    results = {}
    for factory in WORKLOADS:
        profile = factory()
        for design in DESIGNS:
            result = trace_cache.run(design, profile, "1GB")
            transferred = max(1, (result.offchip_demand_blocks
                                  + result.offchip_prefetch_blocks
                                  + result.offchip_writeback_blocks))
            results[(profile.name, design)] = {
                "activations_per_block": result.offchip_row_activations / transferred,
                "offchip_blocks_per_access": result.offchip_blocks_per_access,
            }
    return results


@pytest.mark.benchmark(group="energy")
def test_energy_row_activation_proxy(benchmark, trace_cache, results_dir):
    results = benchmark.pedantic(_measure, args=(trace_cache,), rounds=1, iterations=1)

    rows = [
        [workload, design,
         f"{data['activations_per_block']:.3f}",
         f"{data['offchip_blocks_per_access']:.2f}"]
        for (workload, design), data in results.items()
    ]
    write_report(results_dir, "energy_activations", format_table(
        ["Workload", "Design", "Offchip activations/block", "Offchip blocks/access"],
        rows,
    ))

    for factory in WORKLOADS:
        name = factory().name
        alloy = results[(name, "alloy")]["activations_per_block"]
        unison = results[(name, "unison")]["activations_per_block"]
        footprint = results[(name, "footprint")]["activations_per_block"]
        # Footprint-granularity transfers amortize row activations over many
        # blocks; block-granularity transfers do not (Section V-D).
        assert unison < alloy
        assert footprint < alloy
        # The paper quotes roughly one activation per ~10 transferred blocks
        # for the footprint-based designs; allow a generous band.
        assert unison < 0.6
