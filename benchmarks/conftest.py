"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation.  The heavy lifting is one call into
:class:`repro.sim.experiment.ExperimentRunner`; the ``benchmark`` fixture
wraps that call (``rounds=1`` -- these are experiments, not micro-benchmarks),
and the resulting rows are appended to ``benchmarks/results/`` so that
EXPERIMENTS.md can reference the measured numbers.

Fidelity knobs (environment variables):

* ``REPRO_BENCH_ACCESSES`` -- accesses per experiment (default 40000).
* ``REPRO_BENCH_SCALE``    -- capacity scale-down factor (default 512).

Raising the access count and lowering the scale factor improves fidelity at
the cost of run time; the defaults regenerate every table and figure in
roughly ten minutes on a laptop.

Trace generation goes through the executor's caches, whose bottom layer is
the persistent on-disk :class:`repro.trace.store.TraceStore`
(``~/.cache/repro/traces``; relocate or disable via ``REPRO_TRACE_STORE``).
A second benchmark session with the same fidelity knobs therefore replays
every workload trace from disk instead of regenerating it -- and CI caches
the store directory between runs, keyed on the generator version.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import List, Sequence

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sim.executor import cached_baseline, cached_trace  # noqa: E402
from repro.sim.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner  # noqa: E402
from repro.workloads.profile import WorkloadProfile  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "40000"))
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "512"))


def bench_config(seed: int = 1) -> ExperimentConfig:
    """The experiment configuration used by every benchmark."""
    return ExperimentConfig(
        scale=BENCH_SCALE,
        num_accesses=BENCH_ACCESSES,
        num_cores=16,
        seed=seed,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One experiment runner shared by all benchmarks in a session."""
    return ExperimentRunner(bench_config())


class TraceCache:
    """Runs designs over shared per-workload traces.

    Backed by the sweep executor's process-wide trace cache (and, beneath
    it, the persistent on-disk trace store), so benchmarks using this
    helper and benchmarks declared as ``SweepSpec`` grids (fig6, fig8)
    generate each workload trace at most once per session -- and not at
    all when a previous session already stored it.
    """

    def __init__(self, experiment_runner: ExperimentRunner) -> None:
        self.runner = experiment_runner

    def trace_for(self, profile: WorkloadProfile) -> list:
        return cached_trace(self.runner, profile)

    def run(self, design: str, profile: WorkloadProfile, capacity,
            associativity=None) -> ExperimentResult:
        trace = self.trace_for(profile)
        return self.runner.run_design(
            design, profile, capacity,
            trace=trace,
            associativity=associativity,
            baseline_stats=cached_baseline(self.runner, profile, trace),
        )


@pytest.fixture(scope="session")
def trace_cache(runner) -> TraceCache:
    return TraceCache(runner)


def write_report(results_dir: Path, name: str, lines: Sequence[str]) -> None:
    """Persist one regenerated table/figure and echo it to the console."""
    path = results_dir / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text, encoding="utf-8")
    print(f"\n=== {name} ===")
    print(text)


def format_table(header: Sequence[str], rows: List[Sequence[str]]) -> List[str]:
    """Simple fixed-width table formatter for the report files."""
    columns = [header] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(header))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return lines
