"""Ablation study of Unison Cache's individual design choices.

The paper motivates each mechanism separately (Section III-A); this benchmark
quantifies what each one contributes by disabling it:

* **Way prediction** -- the paper's claim is that a simple address-hash way
  predictor makes 4-way associativity essentially free.  The ablation compares
  the real predictor against an *oracle* that always knows the correct way:
  their hit latencies should be within a couple of cycles of each other.
* **Set associativity** -- direct-mapped vs 4-way miss ratio (Figure 5's left
  half, repeated here as part of the ablation record).
* **Footprint fetching** -- Unison's page-based allocation with footprint
  prediction vs Alloy's demand-block fetching: hit-ratio gain and the
  off-chip traffic cost of the prefetched blocks.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, format_table, write_report

from repro.sim.experiment import ExperimentRunner
from repro.sim.factory import make_design
from repro.workloads.cloudsuite import web_serving


def _measure():
    runner = ExperimentRunner(bench_config(seed=21))
    profile = web_serving()
    trace = runner.build_trace(profile)
    warmup = trace[: int(len(trace) * 2 / 3)]
    measure = trace[int(len(trace) * 2 / 3):]

    def run(design):
        design.warm_up(warmup)
        design.run(measure)
        return design

    scale = runner.config.scale
    with_wp = run(make_design("unison", "1GB", scale=scale))
    oracle_way = make_design("unison", "1GB", scale=scale)
    # Oracle ablation: disabling the predictor makes the model read the
    # correct way directly (perfect way knowledge, no mispredict penalty).
    oracle_way.way_predictor = None
    run(oracle_way)
    direct_mapped = run(make_design("unison-dm", "1GB", scale=scale))
    alloy = run(make_design("alloy", "1GB", scale=scale))

    return {
        "way_predictor": with_wp,
        "oracle_way": oracle_way,
        "direct_mapped": direct_mapped,
        "alloy": alloy,
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_of_design_choices(benchmark, results_dir):
    designs = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name, design in designs.items():
        stats = design.cache_stats
        rows.append([
            name,
            f"{100 * stats.miss_ratio:.1f}",
            f"{stats.average_hit_latency:.1f}",
            f"{stats.offchip_blocks_per_access:.2f}",
        ])
    write_report(results_dir, "ablation_design_choices", format_table(
        ["Configuration", "miss%", "avg hit latency", "offchip blocks/access"],
        rows,
    ))

    with_wp = designs["way_predictor"].cache_stats
    oracle = designs["oracle_way"].cache_stats
    direct = designs["direct_mapped"].cache_stats
    alloy = designs["alloy"].cache_stats

    # Associativity ablation: 4-way reduces the miss ratio vs direct-mapped.
    assert with_wp.miss_ratio <= direct.miss_ratio + 0.01

    # Footprint fetching ablation: Unison's hit ratio is far higher than the
    # demand-fetch-only Alloy Cache on the same trace...
    assert with_wp.hit_ratio > alloy.hit_ratio + 0.15
    # ...at a bounded off-chip traffic cost (the footprints are filtered).
    assert with_wp.offchip_blocks_per_access < 4 * max(
        0.25, alloy.offchip_blocks_per_access
    )

    # Way prediction ablation: the real predictor's hit latency stays within a
    # few cycles of the oracle's and of the direct-mapped organization's (the
    # whole point of Section III-A.6).
    assert with_wp.average_hit_latency <= oracle.average_hit_latency + 5
    assert with_wp.average_hit_latency <= direct.average_hit_latency + 10
