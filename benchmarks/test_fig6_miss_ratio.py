"""Figure 6 -- miss ratio of Alloy, Footprint and Unison across capacities.

The paper sweeps 128 MB - 1 GB for the CloudSuite workloads and 1 - 8 GB for
TPC-H.  The qualitative shape to reproduce:

* Alloy Cache has by far the highest miss ratio everywhere (least pronounced
  for Data Analytics, the workload with the lowest spatial locality);
* Footprint and Unison achieve low miss ratios (hit rates often above 90%);
* miss ratios fall (or at least do not rise) as capacity grows;
* for TPC-H, Alloy provides very few hits until the cache reaches multiple GB.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, format_table, write_report

from repro.sim.executor import run_sweep
from repro.sim.spec import SweepSpec
from repro.workloads.cloudsuite import CLOUDSUITE_WORKLOADS, tpch_queries

CLOUDSUITE_CAPACITIES = ("128MB", "256MB", "512MB", "1GB")
TPCH_CAPACITIES = ("1GB", "2GB", "4GB", "8GB")
DESIGNS = ("alloy", "footprint", "unison")


def _measure():
    # Two declarative grids (CloudSuite and TPC-H sweep different capacity
    # ranges); the executor's shared cache generates each workload trace and
    # no-cache baseline once, and every design replays the same trace.
    sweeps = (
        SweepSpec(designs=DESIGNS, workloads=CLOUDSUITE_WORKLOADS,
                  capacities=CLOUDSUITE_CAPACITIES, config=bench_config()),
        SweepSpec(designs=DESIGNS, workloads=(tpch_queries(),),
                  capacities=TPCH_CAPACITIES, config=bench_config()),
    )
    results = {}
    for spec in sweeps:
        for result in run_sweep(spec):
            results[(result.workload, result.capacity, result.design)] = (
                result.miss_ratio
            )
    return results


@pytest.mark.benchmark(group="fig6")
def test_fig6_miss_ratio_comparison(benchmark, results_dir):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    workloads = [p.name for p in CLOUDSUITE_WORKLOADS] + [tpch_queries().name]
    rows = []
    for workload in workloads:
        capacities = TPCH_CAPACITIES if "TPC-H" in workload else CLOUDSUITE_CAPACITIES
        for capacity in capacities:
            rows.append([
                workload, capacity,
                f"{100 * results[(workload, capacity, 'alloy')]:.1f}",
                f"{100 * results[(workload, capacity, 'footprint')]:.1f}",
                f"{100 * results[(workload, capacity, 'unison')]:.1f}",
            ])
    write_report(results_dir, "fig6_miss_ratio", format_table(
        ["Workload", "Capacity", "Alloy miss%", "Footprint miss%", "Unison miss%"],
        rows,
    ))

    # --- Shape assertions ------------------------------------------------ #
    # 1. Alloy has the highest miss ratio for every workload at the largest
    #    CloudSuite capacity.
    for profile in CLOUDSUITE_WORKLOADS:
        alloy = results[(profile.name, "1GB", "alloy")]
        assert alloy >= results[(profile.name, "1GB", "unison")]
        assert alloy >= results[(profile.name, "1GB", "footprint")]

    # 2. Page-based designs reach high hit rates at 1GB on the high-spatial-
    #    locality workloads (paper: "often 90% or better").
    for name in ("Web Search", "Data Serving", "Web Serving", "Software Testing"):
        assert results[(name, "1GB", "unison")] < 0.25
        assert results[(name, "1GB", "footprint")] < 0.25

    # 3. Capacity helps (monotone within noise) for Unison.
    for profile in CLOUDSUITE_WORKLOADS:
        small = results[(profile.name, "128MB", "unison")]
        large = results[(profile.name, "1GB", "unison")]
        assert large <= small + 0.03

    # 4. Data Analytics (lowest spatial locality) is the workload where the
    #    page-based designs' *relative* advantage over Alloy is weakest: the
    #    ratio of Unison's to Alloy's miss ratio is highest there.
    relative = {}
    for profile in CLOUDSUITE_WORKLOADS:
        alloy = results[(profile.name, "1GB", "alloy")]
        unison = results[(profile.name, "1GB", "unison")]
        relative[profile.name] = unison / max(alloy, 1e-9)
    assert max(relative, key=relative.get) == "Data Analytics"

    # 5. TPC-H: Alloy's miss ratio stays high for small caches and only drops
    #    meaningfully at multi-GB capacities.
    tpch = tpch_queries().name
    assert results[(tpch, "1GB", "alloy")] > 0.4
    assert results[(tpch, "8GB", "alloy")] < results[(tpch, "1GB", "alloy")]
    # Unison still clearly beats Alloy on TPC-H at every capacity.
    for capacity in TPCH_CAPACITIES:
        assert results[(tpch, capacity, "unison")] < results[(tpch, capacity, "alloy")]
