"""Table V -- predictor accuracy and overfetch per workload.

Regenerates, for every workload, the Alloy Cache miss-predictor accuracy, the
Footprint Cache and Unison Cache (960B and 1984B pages) footprint-predictor
accuracy and overfetch, and the Unison Cache way-predictor accuracy, at the
paper's 1 GB design point (8 GB for TPC-H).
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.workloads.cloudsuite import ALL_WORKLOADS


def _capacity_for(workload_name: str) -> str:
    return "8GB" if "TPC-H" in workload_name else "1GB"


def _measure(trace_cache):
    rows = {}
    for profile in ALL_WORKLOADS:
        capacity = _capacity_for(profile.name)
        alloy = trace_cache.run("alloy", profile, capacity)
        footprint = trace_cache.run("footprint", profile, capacity)
        unison_960 = trace_cache.run("unison", profile, capacity)
        unison_1984 = trace_cache.run("unison-1984", profile, capacity)
        rows[profile.name] = {
            "alloy_mp": alloy.miss_prediction_accuracy,
            "fc_fp": footprint.footprint_accuracy,
            "fc_overfetch": footprint.footprint_overfetch,
            "uc960_fp": unison_960.footprint_accuracy,
            "uc960_overfetch": unison_960.footprint_overfetch,
            "uc960_wp": unison_960.way_prediction_accuracy,
            "uc1984_fp": unison_1984.footprint_accuracy,
            "uc1984_wp": unison_1984.way_prediction_accuracy,
        }
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_predictor_accuracy(benchmark, trace_cache, results_dir):
    rows = benchmark.pedantic(_measure, args=(trace_cache,), rounds=1, iterations=1)

    table = []
    for workload, r in rows.items():
        table.append([
            workload,
            f"{100 * r['alloy_mp']:.1f}",
            f"{100 * r['fc_fp']:.1f}",
            f"{100 * r['fc_overfetch']:.1f}",
            f"{100 * r['uc960_fp']:.1f}",
            f"{100 * r['uc960_overfetch']:.1f}",
            f"{100 * r['uc960_wp']:.1f}",
            f"{100 * r['uc1984_fp']:.1f}",
            f"{100 * r['uc1984_wp']:.1f}",
        ])
    write_report(results_dir, "table5_predictors", format_table(
        ["Workload", "AC MP%", "FC FP%", "FC OF%", "UC960 FP%", "UC960 OF%",
         "UC960 WP%", "UC1984 FP%", "UC1984 WP%"],
        table,
    ))

    values = list(rows.values())

    def _with_data(metric):
        # A value of exactly 0.0 means the design evicted too few pages in the
        # measurement window to record any trained-prediction outcome (this
        # happens for Footprint Cache on its lowest-miss-ratio workloads);
        # such entries carry no information and are excluded from the means.
        return [r[metric] for r in values if r[metric] > 0.0]

    # Paper: the way predictor achieves ~93-96% on average because it
    # operates at page granularity.
    mean_wp = sum(r["uc960_wp"] for r in values) / len(values)
    assert mean_wp > 0.85

    # Paper: AC's miss predictor is "highly effective, achieving over 90%";
    # the reproduction's MAP-I model should at least be clearly useful.
    mean_mp = sum(r["alloy_mp"] for r in values) / len(values)
    assert mean_mp > 0.6

    # Paper: footprint predictors are accurate (81-99% per workload).
    fc_fp = _with_data("fc_fp")
    uc_fp = _with_data("uc960_fp")
    assert fc_fp and sum(fc_fp) / len(fc_fp) > 0.7
    assert uc_fp and sum(uc_fp) / len(uc_fp) > 0.6

    # Paper: overfetch is modest (~10% on average), i.e. the designs stay
    # bandwidth-efficient.
    mean_overfetch = sum(r["uc960_overfetch"] for r in values) / len(values)
    assert mean_overfetch < 0.45

    # Paper: Software Testing has among the least predictable footprints of
    # the CloudSuite workloads for the page-based designs.
    cloudsuite = {k: v for k, v in rows.items()
                  if "TPC-H" not in k and v["fc_fp"] > 0.0}
    worst_fc = min(cloudsuite, key=lambda k: cloudsuite[k]["fc_fp"])
    assert worst_fc in ("Software Testing", "Data Analytics", "Web Serving")
