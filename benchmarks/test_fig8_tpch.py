"""Figure 8 -- performance comparison for TPC-H queries at 1-8 GB.

TPC-H (MonetDB, >100 GB dataset) is the paper's "realistic server setup" for
multi-gigabyte caches.  The shape to reproduce:

* Unison Cache outperforms Footprint Cache at every capacity, because FC's
  SRAM tag latency keeps growing (25-48 cycles at 2-8 GB) while Unison's
  access latency is capacity-independent;
* Alloy Cache improves steadily with capacity but remains limited by its low
  hit ratio;
* the paper quotes ~7% Unison-over-Alloy and ~6% Unison-over-Footprint
  improvement at 8 GB.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, format_table, write_report

from repro.sim.executor import run_sweep
from repro.sim.spec import SweepSpec
from repro.workloads.cloudsuite import tpch_queries

CAPACITIES = ("1GB", "2GB", "4GB", "8GB")
DESIGNS = ("alloy", "footprint", "unison", "ideal")


def _measure():
    spec = SweepSpec(designs=DESIGNS, workloads=(tpch_queries(),),
                     capacities=CAPACITIES, config=bench_config())
    return {
        (result.capacity, result.design): result.speedup_vs_no_cache
        for result in run_sweep(spec)
    }


@pytest.mark.benchmark(group="fig8")
def test_fig8_tpch_scaling(benchmark, results_dir):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [capacity,
         f"{results[(capacity, 'alloy')]:.2f}",
         f"{results[(capacity, 'footprint')]:.2f}",
         f"{results[(capacity, 'unison')]:.2f}",
         f"{results[(capacity, 'ideal')]:.2f}"]
        for capacity in CAPACITIES
    ]
    write_report(results_dir, "fig8_tpch_performance", format_table(
        ["Capacity", "Alloy", "Footprint", "Unison", "Ideal"], rows,
    ))

    # 1. Every design helps, and Ideal bounds them.
    for (capacity, design), speedup in results.items():
        assert speedup > 0.95
        assert speedup <= results[(capacity, "ideal")] + 0.05

    # 2. Unison beats Footprint at the multi-GB capacities where FC's tag
    #    latency is large (the paper's central scalability argument).
    for capacity in ("4GB", "8GB"):
        assert results[(capacity, "unison")] >= results[(capacity, "footprint")] - 0.01

    # 3. Unison beats Alloy at every capacity, and by a visible margin at 8GB.
    for capacity in CAPACITIES:
        assert results[(capacity, "unison")] >= results[(capacity, "alloy")] - 0.01
    assert results[("8GB", "unison")] / results[("8GB", "alloy")] > 1.02

    # 4. Alloy improves steadily with capacity (its hit ratio grows).
    alloy = [results[(c, "alloy")] for c in CAPACITIES]
    assert alloy[-1] >= alloy[0] - 0.02
