"""Headline claims of the paper's abstract and conclusion.

* Unison Cache improves performance over Alloy Cache by ~14% at 1 GB thanks
  to its high hit rate (abstract, Section V-C).
* Unison Cache performs on par with (paper: ~2% better than) the hypothetical
  Footprint Cache design at 1 GB while requiring no SRAM tag array.
* Unison Cache approaches the performance of the ideal latency-optimized
  DRAM cache.

The reproduction asserts the *direction and rough magnitude* of these claims
(the absolute factors depend on the synthetic workloads; see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.workloads.cloudsuite import CLOUDSUITE_WORKLOADS


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _measure(trace_cache):
    speedups = {"alloy": [], "footprint": [], "unison": [], "ideal": []}
    per_workload = {}
    for profile in CLOUDSUITE_WORKLOADS:
        row = {}
        for design in speedups:
            result = trace_cache.run(design, profile, "1GB")
            speedups[design].append(result.speedup_vs_no_cache)
            row[design] = result.speedup_vs_no_cache
        per_workload[profile.name] = row
    geo = {design: _geomean(values) for design, values in speedups.items()}
    return geo, per_workload


@pytest.mark.benchmark(group="headline")
def test_headline_performance_claims(benchmark, trace_cache, results_dir):
    geo, per_workload = benchmark.pedantic(
        _measure, args=(trace_cache,), rounds=1, iterations=1
    )

    rows = [[w, f"{r['alloy']:.2f}", f"{r['footprint']:.2f}",
             f"{r['unison']:.2f}", f"{r['ideal']:.2f}"]
            for w, r in per_workload.items()]
    rows.append(["GEOMEAN", f"{geo['alloy']:.2f}", f"{geo['footprint']:.2f}",
                 f"{geo['unison']:.2f}", f"{geo['ideal']:.2f}"])
    lines = format_table(
        ["Workload (1GB)", "Alloy", "Footprint", "Unison", "Ideal"], rows)
    lines.append("")
    lines.append(f"Unison vs Alloy     : {100 * (geo['unison'] / geo['alloy'] - 1):+.1f}%  (paper: +14%)")
    lines.append(f"Unison vs Footprint : {100 * (geo['unison'] / geo['footprint'] - 1):+.1f}%  (paper: +2%)")
    lines.append(f"Unison vs Ideal     : {100 * (geo['unison'] / geo['ideal'] - 1):+.1f}%  (paper: approaches ideal)")
    write_report(results_dir, "headline_claims", lines)

    # Unison improves on Alloy by a clear margin at 1GB (paper: 14%).
    assert geo["unison"] / geo["alloy"] > 1.05

    # Unison is at least on par with the hypothetical Footprint Cache.
    assert geo["unison"] / geo["footprint"] > 0.97

    # Unison approaches (comes within ~20% of) the ideal DRAM cache.
    assert geo["unison"] / geo["ideal"] > 0.80

    # And the ideal cache is strictly the best design.
    assert geo["ideal"] >= max(geo["alloy"], geo["footprint"], geo["unison"])
