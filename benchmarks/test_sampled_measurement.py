"""Checkpointed sampled simulation: the PR's acceptance benchmark.

Two claims, both on a 1M-access trace:

* **Accuracy at a fraction of the cost.**  A sampled Unison run --
  one warm checkpoint, 20 short windows with functional-warming prologues,
  95% confidence aggregation -- reproduces the full-replay miss ratio
  within two percentage points (the resolution Figures 5/6 are read at,
  with the full value inside the sampled 95% CI) and the speedup-vs-no-cache
  within 2% relative (the paper's "average error of less than 2% at a 95%
  confidence level" claim is about performance), while simulating at most
  20% of the accesses.
* **O(window) trace access.**  Opening a measurement window near the end of
  an uncompressed binary trace through the mmap reader costs the same as
  opening one near the beginning -- window-open time must not scale with
  window offset (this is what makes sampling billion-access traces
  feasible: cost tracks windows, not trace length).
"""

from __future__ import annotations

import time

from conftest import write_report

from repro.sampling import SamplingConfig, WindowedSampler
from repro.sampling.seekable import MmapTraceReader
from repro.sim.executor import cached_trace
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.trace.binfmt import write_trace_bin
from repro.workloads.cloudsuite import workload_by_name

#: Access count the acceptance criterion is stated over.
TRACE_ACCESSES = 1_000_000
#: Simulated-access budget of the sampled run.
SAMPLED_FRACTION_CEILING = 0.20
#: Speedup agreement and CI target (the paper's 2%-at-95% claim).
SPEEDUP_RELATIVE_TOLERANCE = 0.02
#: Miss-ratio agreement in absolute percentage points.
MISS_RATIO_POINTS_TOLERANCE = 0.02

#: Sampling schedule: 40k-access warm checkpoint, 20 windows of 7k accesses
#: each preceded by 1k of functional warming = at most 200k simulated.
SAMPLING = SamplingConfig(
    checkpoint_accesses=40_000,
    warmup_accesses=1_000,
    window_accesses=7_000,
    min_windows=20,
    max_windows=20,
)

CONFIG = ExperimentConfig(scale=512, num_accesses=TRACE_ACCESSES,
                          num_cores=4, seed=1)


def test_sampled_unison_matches_full_replay(results_dir):
    profile = workload_by_name("Web Search")
    runner = ExperimentRunner(CONFIG)
    trace = cached_trace(runner, profile)

    start = time.perf_counter()
    full = runner.run_design("unison", profile, "1GB", trace=trace)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    run = WindowedSampler(SAMPLING, config=CONFIG).compare(
        ["unison"], profile, "1GB", trace=trace)
    sampled_seconds = time.perf_counter() - start
    sampled = run.results()[0]
    miss_ci = run.designs["unison"].interval("miss_ratio")
    speedup_ci = run.designs["unison"].interval("speedup_vs_no_cache")

    miss_diff_points = abs(sampled.miss_ratio - full.miss_ratio)
    speedup_diff_rel = (abs(sampled.speedup_vs_no_cache
                            - full.speedup_vs_no_cache)
                        / full.speedup_vs_no_cache)

    write_report(results_dir, "sampled_measurement", [
        f"trace: Web Search, {TRACE_ACCESSES} accesses, 4 cores, scale 512",
        f"sampling: {run.windows_measured} windows x "
        f"{SAMPLING.window_accesses} accesses, "
        f"{SAMPLING.warmup_accesses} warm-up each, "
        f"{SAMPLING.checkpoint_accesses} checkpoint prologue",
        "",
        f"full replay : miss {100 * full.miss_ratio:5.2f}%          "
        f"speedup {full.speedup_vs_no_cache:.4f}        ({full_seconds:5.1f} s)",
        f"sampled     : miss {100 * sampled.miss_ratio:5.2f}% "
        f"+- {100 * miss_ci.half_width:4.2f}  speedup "
        f"{sampled.speedup_vs_no_cache:.4f} +- {speedup_ci.half_width:.4f} "
        f"({sampled_seconds:5.1f} s)",
        "",
        f"simulated accesses : {run.simulated_accesses} of "
        f"{TRACE_ACCESSES} ({100 * run.sampled_fraction:.1f}%, "
        f"ceiling {100 * SAMPLED_FRACTION_CEILING:.0f}%)",
        f"miss-ratio error   : {100 * miss_diff_points:.2f} points "
        f"(tolerance {100 * MISS_RATIO_POINTS_TOLERANCE:.0f}; full value "
        f"inside sampled 95% CI: {miss_ci.contains(full.miss_ratio)})",
        f"speedup error      : {100 * speedup_diff_rel:.2f}% relative "
        f"(tolerance {100 * SPEEDUP_RELATIVE_TOLERANCE:.0f}%; 95% CI "
        f"half-width {100 * speedup_ci.relative_error:.2f}%)",
    ])

    assert run.sampled_fraction <= SAMPLED_FRACTION_CEILING, (
        f"sampled run simulated {100 * run.sampled_fraction:.1f}% of the "
        f"trace (budget {100 * SAMPLED_FRACTION_CEILING:.0f}%)"
    )
    # Performance: the paper's 2%-at-95%-confidence claim.
    assert speedup_diff_rel <= SPEEDUP_RELATIVE_TOLERANCE, (
        f"sampled speedup off by {100 * speedup_diff_rel:.2f}% "
        f"(> {100 * SPEEDUP_RELATIVE_TOLERANCE:.0f}%)"
    )
    assert speedup_ci.relative_error <= SPEEDUP_RELATIVE_TOLERANCE, (
        f"speedup 95% CI half-width {100 * speedup_ci.relative_error:.2f}% "
        f"has not converged to {100 * SPEEDUP_RELATIVE_TOLERANCE:.0f}%"
    )
    # Miss ratio: within the resolution the paper's figures are read at,
    # and statistically consistent with the full replay.
    assert miss_diff_points <= MISS_RATIO_POINTS_TOLERANCE, (
        f"sampled miss ratio off by {100 * miss_diff_points:.2f} points "
        f"(> {100 * MISS_RATIO_POINTS_TOLERANCE:.0f})"
    )
    assert miss_ci.contains(full.miss_ratio), (
        f"full-replay miss ratio {full.miss_ratio:.5f} outside the sampled "
        f"95% CI [{miss_ci.lower:.5f}, {miss_ci.upper:.5f}]"
    )
    assert miss_ci.half_width <= MISS_RATIO_POINTS_TOLERANCE, (
        f"miss-ratio 95% CI half-width {100 * miss_ci.half_width:.2f} points "
        f"exceeds {100 * MISS_RATIO_POINTS_TOLERANCE:.0f}"
    )


def test_mmap_window_open_does_not_scale_with_offset(results_dir, tmp_path):
    profile = workload_by_name("Web Search")
    runner = ExperimentRunner(CONFIG)
    trace = cached_trace(runner, profile)
    path = tmp_path / "windows.rptr"
    write_trace_bin(path, trace, num_cores=4, compress=False)

    window = 4_096
    offsets = {
        "1%": TRACE_ACCESSES // 100,
        "50%": TRACE_ACCESSES // 2,
        "99%": TRACE_ACCESSES * 99 // 100 - window,
    }

    def best_of(fn, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    timings = {}
    with MmapTraceReader(path) as reader:
        # Correctness first: a window deep in the trace decodes exactly.
        probe = offsets["99%"]
        assert reader.read_window(probe, probe + 64) == trace[probe:probe + 64]
        for label, offset in offsets.items():
            timings[label] = best_of(
                lambda offset=offset: reader.read_window(offset,
                                                         offset + window))

    write_report(results_dir, "sampled_window_open", [
        f"uncompressed trace: {TRACE_ACCESSES} accesses "
        f"({path.stat().st_size} bytes); window = {window} records,"
        f" best of 7",
        "",
        *(f"open at {label:>3}: {1000 * seconds:7.3f} ms"
          for label, seconds in timings.items()),
        "",
        f"late/early ratio: {timings['99%'] / timings['1%']:.2f}x "
        f"(must not scale with offset)",
    ])

    # O(window), not O(offset): generous slack for timer noise at the
    # sub-millisecond scale, but far below any linear-in-offset behaviour
    # (a streaming skip of 99% of this trace costs tens of milliseconds).
    assert timings["99%"] <= max(3.0 * timings["1%"], 0.050), (
        f"window open scaled with offset: {timings}"
    )
