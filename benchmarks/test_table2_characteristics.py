"""Table II -- key characteristics of the three DRAM cache schemes.

Everything in this table is structural (derived from the organizations), so
the benchmark recomputes each cell from the configuration models and checks
it against the paper's numbers.
"""

from __future__ import annotations

from conftest import format_table, write_report

from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
)
from repro.core.row_layout import UnisonRowLayout
from repro.predictors.miss import MissPredictor
from repro.predictors.way import WayPredictor
from repro.utils.units import format_size


def _characteristics():
    alloy = AlloyCacheConfig(capacity="8GB")
    footprint = FootprintCacheConfig(capacity="8GB")
    unison_960 = UnisonCacheConfig(capacity="8GB")
    unison_1984 = UnisonCacheConfig(capacity="8GB", blocks_per_page=31)
    layout_960 = UnisonRowLayout(UnisonCacheConfig(capacity=64 * 8192))
    layout_1984 = UnisonRowLayout(
        UnisonCacheConfig(capacity=64 * 8192, blocks_per_page=31)
    )
    miss_predictor = MissPredictor(num_cores=16, entries_per_core=256, counter_bits=3)
    way_small = WayPredictor.for_capacity(1 * 1024 ** 3)
    way_large = WayPredictor.for_capacity(8 * 1024 ** 3)
    fc_tags_8g = footprint_tag_array_for_capacity("8GB")

    return {
        "blocks_per_row": {
            "alloy": alloy.blocks_per_row,
            "footprint": footprint.blocks_per_row,
            "unison_960": layout_960.data_blocks_per_row,
            "unison_1984": layout_1984.data_blocks_per_row,
        },
        "sram_tags_8gb_bytes": {
            "alloy": 0,
            "footprint": fc_tags_8g.tag_bytes,
            "unison": 0,
        },
        "in_dram_tags_8gb_bytes": {
            "alloy": alloy.in_dram_tag_bytes,
            "footprint": 0,
            "unison": int(unison_960.in_dram_tag_fraction * unison_960.capacity_bytes),
        },
        "miss_predictor_bytes": {
            "per_core": miss_predictor.storage_bytes_per_core,
            "total": miss_predictor.storage_bytes_total,
        },
        "way_predictor_bytes": {
            "1GB": way_small.storage_bytes,
            "8GB": way_large.storage_bytes,
        },
        "associativity": {
            "alloy": 1,
            "footprint": footprint.associativity,
            "unison": unison_960.associativity,
        },
    }


def test_table2_characteristics(benchmark, results_dir):
    data = benchmark.pedantic(_characteristics, rounds=1, iterations=1)

    rows = [
        ["64B blocks per 8KB row", "112", str(data["blocks_per_row"]["alloy"])],
        ["  (Footprint Cache)", "128", str(data["blocks_per_row"]["footprint"])],
        ["  (Unison 960B/1984B)", "120-124",
         f"{data['blocks_per_row']['unison_960']}-{data['blocks_per_row']['unison_1984']}"],
        ["SRAM tag array @ 8GB (FC)", "~48MB",
         format_size(data["sram_tags_8gb_bytes"]["footprint"])],
        ["In-DRAM tag size @ 8GB (AC)", "1GB (12.5%)",
         format_size(data["in_dram_tags_8gb_bytes"]["alloy"])],
        ["In-DRAM tag size @ 8GB (UC)", "256-512MB (3.1-6.2%)",
         format_size(data["in_dram_tags_8gb_bytes"]["unison"])],
        ["Miss-predictor size", "96B/core, 1.5KB total",
         f"{data['miss_predictor_bytes']['per_core']}B/core, "
         f"{data['miss_predictor_bytes']['total']}B total"],
        ["Way predictor", "1-16KB",
         f"{data['way_predictor_bytes']['1GB']}B-{data['way_predictor_bytes']['8GB']}B"],
        ["Associativity (AC/FC/UC)", "1 / 32 / 4",
         f"{data['associativity']['alloy']} / {data['associativity']['footprint']}"
         f" / {data['associativity']['unison']}"],
    ]
    write_report(results_dir, "table2_characteristics",
                 format_table(["Characteristic", "Paper", "Measured"], rows))

    # Blocks per row.
    assert data["blocks_per_row"]["alloy"] == 112
    assert data["blocks_per_row"]["footprint"] == 128
    assert data["blocks_per_row"]["unison_960"] == 120
    assert data["blocks_per_row"]["unison_1984"] == 124
    # SRAM tag array for FC at 8GB: paper quotes ~48-50MB.
    assert 40e6 < data["sram_tags_8gb_bytes"]["footprint"] < 60e6
    # Alloy's in-DRAM tags: roughly 1GB at 8GB capacity (the paper quotes
    # 12.5%; with 112 TADs per row the exact figure is 896MB).
    assert data["in_dram_tags_8gb_bytes"]["alloy"] > 0.85 * 1024 ** 3
    # Unison's in-DRAM overhead: 3.1-6.2% of 8GB.
    unison_overhead = data["in_dram_tags_8gb_bytes"]["unison"]
    assert 0.02 * 8 * 1024 ** 3 < unison_overhead < 0.07 * 8 * 1024 ** 3
    # Predictor storage.
    assert data["miss_predictor_bytes"]["per_core"] == 96
    assert data["miss_predictor_bytes"]["total"] == 1536
    assert data["way_predictor_bytes"]["1GB"] == 1024
    assert data["way_predictor_bytes"]["8GB"] == 16 * 1024
