"""Scalar-versus-batch functional-warming throughput.

The batch engine's acceptance bar is a >=10x warming speedup on a
1M-access trace for at least Unison and Alloy, with bit-identical
post-warming state.  This benchmark measures both engines over the same
in-memory trace (best-of-``REPRO_BENCH_WARM_REPS`` interleaved repetitions,
so machine noise hits both sides equally), records the throughput table to
``benchmarks/results/batch_warming.txt``, and writes the
``BENCH_batch_warming.json`` trajectory artifact at the repo root so the
speedup can be tracked across revisions.

Fidelity knobs:

* ``REPRO_BENCH_WARM_ACCESSES`` -- warm-stream length (default 1_000_000).
* ``REPRO_BENCH_WARM_REPS``     -- repetitions per engine (default 2).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from conftest import format_table, write_report
from repro.engine import (
    numpy_available,
    records_to_array,
    set_batch_enabled,
    warm_design,
)
from repro.sim.factory import make_design
from repro.workloads import workload_by_name
from repro.workloads.generator import SyntheticWorkload

WARM_ACCESSES = int(os.environ.get("REPRO_BENCH_WARM_ACCESSES", "1000000"))
WARM_REPS = int(os.environ.get("REPRO_BENCH_WARM_REPS", "2"))

#: Validated measurement recipe: Web Search at scale 512, 256MB designs.
CAPACITY = "256MB"
SCALE = 512
DESIGNS = ("unison", "alloy")

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_batch_warming.json"


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_batch_warming_throughput(results_dir):
    profile = workload_by_name("Web Search")
    profile = profile.scaled(
        max(profile.region_size * 64, profile.working_set_bytes // SCALE)
    )
    trace = SyntheticWorkload(profile, num_cores=4,
                              seed=7).generate(WARM_ACCESSES)
    array = records_to_array(trace)

    rows = []
    payload = {"accesses": WARM_ACCESSES, "reps": WARM_REPS,
               "capacity": CAPACITY, "scale": SCALE, "designs": {}}
    try:
        set_batch_enabled(True)
        for name in DESIGNS:
            t_scalar = t_batch = float("inf")
            scalar = batch = None
            for _ in range(WARM_REPS):
                scalar = make_design(name, CAPACITY, scale=SCALE)
                started = time.perf_counter()
                scalar.warm_up(trace)
                t_scalar = min(t_scalar, time.perf_counter() - started)

                batch = make_design(name, CAPACITY, scale=SCALE)
                started = time.perf_counter()
                engine = warm_design(batch, array)
                t_batch = min(t_batch, time.perf_counter() - started)
                assert engine == "batch"

            assert (pickle.dumps(scalar.snapshot_state().state)
                    == pickle.dumps(batch.snapshot_state().state)), (
                f"batch warming diverged from scalar for {name}"
            )
            scalar_aps = WARM_ACCESSES / t_scalar
            batch_aps = WARM_ACCESSES / t_batch
            speedup = t_scalar / t_batch
            rows.append([name, f"{scalar_aps:,.0f}", f"{batch_aps:,.0f}",
                         f"{speedup:.2f}x"])
            payload["designs"][name] = {
                "scalar_accesses_per_sec": round(scalar_aps, 1),
                "batch_accesses_per_sec": round(batch_aps, 1),
                "speedup": round(speedup, 3),
                "bit_identical": True,
            }
    finally:
        set_batch_enabled(None)

    lines = [f"Functional-warming throughput, {WARM_ACCESSES:,} accesses "
             f"(Web Search, {CAPACITY} @ scale {SCALE}, "
             f"best of {WARM_REPS} interleaved reps)", ""]
    lines += format_table(
        ["design", "scalar acc/s", "batch acc/s", "speedup"], rows
    )
    write_report(results_dir, "batch_warming", lines)
    TRAJECTORY.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
