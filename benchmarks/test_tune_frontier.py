"""Design-space autotuner: discovered hybrids vs. the paper's designs.

Runs a seeded successive-halving search (``repro tune``) over the hybrid
composition grid -- tags x hit predictor x fetch x writeback x replacement
-- and ranks the surviving candidates against the paper's six designs on
the CI-aware Pareto frontier (miss ratio, speedup vs no cache, SRAM
overhead).  The acceptance claim: at least one discovered hybrid
CI-dominates a paper baseline, i.e. the composition grid contains points
the paper never evaluated that are strictly better on every objective even
after accounting for sampling noise.
"""

from __future__ import annotations

from conftest import format_table, write_report

from repro.search import PAPER_BASELINES, TuneConfig, TuneSearch

#: Search fidelity: two rungs of successive halving, the second at double
#: the window budget and half the CI target of the first.
TUNE = TuneConfig(
    workload="Web Search",
    capacity="1GB",
    seed=1,
    num_candidates=12,
    rungs=2,
    eta=2,
    scale=2048,
    num_accesses=24_000,
    num_cores=16,
    window_accesses=1_000,
    warmup_accesses=1_000,
    checkpoint_accesses=6_000,
    min_windows=2,
    base_windows=3,
    base_relative_error=0.30,
)


def _fmt_ci(cell) -> str:
    return f"{cell['mean']:.4f} ±{cell['half_width']:.4f}"


def test_tune_frontier_vs_paper_designs(results_dir, tmp_path):
    search = TuneSearch(TUNE, queue_dir=tmp_path / "queue")
    state = search.run(workers=1)
    assert state.status == "complete"
    artifact = state.frontier

    rows = []
    dominated_any = set()
    ranked = sorted(artifact["designs"],
                    key=lambda d: d["miss_ratio"]["mean"])
    for design in ranked:
        beats = ", ".join(design["dominates_baselines"]) or "-"
        if design["kind"] == "candidate":
            dominated_any.update(design["dominates_baselines"])
        rows.append((
            design["name"],
            design["kind"],
            "*" if design["on_frontier"] else "",
            _fmt_ci(design["miss_ratio"]),
            _fmt_ci(design["speedup"]),
            f"{design['sram_overhead_bytes'] / 1024:.1f}",
            beats,
        ))

    lines = format_table(
        ["design", "kind", "front", "miss ratio (95% CI)",
         "speedup (95% CI)", "SRAM KB", "CI-dominates"],
        rows,
    )
    lines.append("")
    lines.append(f"search {state.token}: "
                 f"{len(state.candidates)} candidates, "
                 f"{len(state.rungs)} rungs, "
                 f"winners: {', '.join(state.winners) or '-'}")
    write_report(results_dir, "tune_frontier", lines)

    # The frontier is non-empty and every winner is a discovered hybrid.
    assert artifact["frontier"]
    candidate_names = set(state.candidate_names())
    assert set(artifact["winners"]) <= candidate_names

    # Headline claim: a discovered hybrid CI-dominates a paper baseline.
    assert dominated_any & set(PAPER_BASELINES), (
        "no discovered hybrid CI-dominates any paper baseline")
