"""Figure 5 -- Unison Cache miss ratio as a function of associativity.

The paper plots the miss ratio of direct-mapped, 4-way and 32-way Unison
organizations for a small (128 MB) and a large (1 GB; 8 GB for TPC-H) cache.
The headline observations to reproduce:

* four ways give a sizeable reduction over direct-mapped (sometimes >2x), and
* going beyond four ways adds little.
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_report

from repro.workloads.cloudsuite import ALL_WORKLOADS


def _capacities_for(workload_name: str):
    if "TPC-H" in workload_name:
        return ("1GB", "8GB")
    return ("128MB", "1GB")


def _measure(runner):
    results = {}
    for profile in ALL_WORKLOADS:
        for capacity in _capacities_for(profile.name):
            sweep = runner.associativity_sweep(profile, capacity,
                                               associativities=(1, 4, 32))
            results[(profile.name, capacity)] = {
                ways: result.miss_ratio for ways, result in sweep.items()
            }
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5_associativity_sweep(benchmark, runner, results_dir):
    results = benchmark.pedantic(_measure, args=(runner,), rounds=1, iterations=1)

    rows = []
    for (workload, capacity), ratios in results.items():
        rows.append([
            workload, capacity,
            f"{100 * ratios[1]:.1f}", f"{100 * ratios[4]:.1f}",
            f"{100 * ratios[32]:.1f}",
        ])
    write_report(results_dir, "fig5_associativity", format_table(
        ["Workload", "Capacity", "1-way miss%", "4-way miss%", "32-way miss%"],
        rows,
    ))

    improvements = []
    diminishing = []
    for ratios in results.values():
        if ratios[1] > 0.01:
            improvements.append((ratios[1] - ratios[4]) / ratios[1])
        diminishing.append(ratios[4] - ratios[32])

    # 4-way associativity provides a sizeable average reduction over
    # direct-mapped (the paper often sees the miss ratio halved).
    assert sum(improvements) / len(improvements) > 0.10

    # Beyond 4 ways there is no significant further reduction (the average
    # additional gain is small compared to the 1-way -> 4-way step).
    avg_gain_4_to_32 = sum(diminishing) / len(diminishing)
    assert avg_gain_4_to_32 < 0.05

    # 4-way should never be much worse than direct-mapped anywhere.
    for ratios in results.values():
        assert ratios[4] <= ratios[1] + 0.02
