"""Table I -- qualitative feature comparison of Alloy, Footprint and Unison.

The table is qualitative in the paper; here each claim is checked against the
models' structural properties (no SRAM tags, embedded tags, predictor
presence, scalability of tag storage with capacity).
"""

from __future__ import annotations

from conftest import format_table, write_report

from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
)


def _feature_matrix():
    """Return {feature: {design: bool}} derived from the configuration models."""
    capacities = ["1GB", "8GB"]
    fc_tags = [footprint_tag_array_for_capacity(c).tag_bytes for c in capacities]
    unison = UnisonCacheConfig(capacity="8GB")
    alloy = AlloyCacheConfig(capacity="8GB")
    footprint = FootprintCacheConfig(capacity="8GB")

    return {
        "No SRAM tag overhead": {
            "AC": True,                       # tags embedded in TADs
            "FC": fc_tags[-1] < 1024 ** 2,    # ~50MB of SRAM -> fails
            "UC": True,                       # tags embedded per page
        },
        "Low hit latency": {
            "AC": True,                       # single TAD read
            "FC": False,                      # SRAM lookup grows with capacity
            "UC": True,                       # overlapped tag+data read
        },
        "High hit rate": {
            "AC": False,                      # temporal reuse only
            "FC": True,
            "UC": True,
        },
        "High effective capacity": {
            "AC": alloy.in_dram_tag_bytes < alloy.capacity_bytes // 10,
            "FC": True,                       # no in-DRAM tags at all
            "UC": unison.in_dram_tag_fraction < 0.10,
        },
        "Scalability": {
            "AC": True,
            "FC": False,                      # SRAM tags grow to ~50MB at 8GB
            "UC": True,
        },
    }


def test_table1_feature_comparison(benchmark, results_dir):
    matrix = benchmark.pedantic(_feature_matrix, rounds=1, iterations=1)

    # Paper Table I expectations.
    expected = {
        "No SRAM tag overhead": {"AC": True, "FC": False, "UC": True},
        "Low hit latency": {"AC": True, "FC": False, "UC": True},
        "High hit rate": {"AC": False, "FC": True, "UC": True},
        "High effective capacity": {"AC": False, "FC": True, "UC": True},
        "Scalability": {"AC": True, "FC": False, "UC": True},
    }

    rows = []
    for feature, designs in matrix.items():
        rows.append([
            feature,
            "yes" if designs["AC"] else "no",
            "yes" if designs["FC"] else "no",
            "yes" if designs["UC"] else "no",
        ])
    write_report(results_dir, "table1_features",
                 format_table(["Feature", "AC", "FC", "UC"], rows))

    # Unison must win every row; the baselines must each fail at least one.
    for feature, designs in expected.items():
        assert matrix[feature]["UC"], f"Unison should provide: {feature}"
        if feature in ("No SRAM tag overhead", "Low hit latency", "Scalability"):
            assert matrix[feature]["FC"] == designs["FC"]
        if feature == "High hit rate":
            assert matrix[feature]["AC"] == designs["AC"]
